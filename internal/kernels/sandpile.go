package kernels

// The Abelian sandpile (EASYPAP's "sable" kernel, listed in §II-A): every
// cell holds a number of sand grains; cells with 4 or more grains topple,
// sending one grain to each 4-neighbour. The synchronous formulation
// (next = cur%4 + incoming spills) is deterministic and
// order-independent, so all variants produce identical boards.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/mpi"
	"easypap/internal/tilegrid"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "sandpile",
		Description: "synchronous Abelian sandpile",
		Init:        sandInit,
		Refresh:     sandRefresh,
		Variants: map[string]core.ComputeFunc{
			"seq":       sandSeq,
			"omp_tiled": sandOmpTiled,
			"lazy_omp":  sandLazyOmp,
			"mpi_omp":   sandMPIOmp,
		},
		DefaultVariant: "seq",
		Codec:          sandCodec{},
	})
}

// sandState is the kernel-private grain grid (uint32 per cell; counts can
// exceed 255 transiently with large initial piles) plus the shared
// tile-activity frontier for the lazy variant and convergence tracking.
type sandState struct {
	dim       int
	cur, next []uint32
	tileW     int
	tileH     int
	fr        *tilegrid.Frontier

	// MPI mode: the rank's band, exchanged ghost rows and the
	// frontier-aware halo engine (nil otherwise).
	band       mpi.Band
	ghostAbove []uint32
	ghostBelow []uint32
	halo       *mpi.Halo
}

func sandInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	st := &sandState{dim: dim, cur: make([]uint32, dim*dim), next: make([]uint32, dim*dim),
		tileW: ctx.Cfg.TileW, tileH: ctx.Cfg.TileH, fr: tilegrid.New(ctx.Grid),
		band: mpi.Band{Lo: 0, Hi: dim, Dim: dim}}
	if ctx.Comm != nil {
		st.band = ctx.Band
		if st.band.Rows()%st.tileH != 0 {
			return fmt.Errorf("sandpile: band of %d rows not divisible by tile height %d",
				st.band.Rows(), st.tileH)
		}
		st.fr.Restrict(st.band.Lo/st.tileH, st.band.Hi/st.tileH)
	}
	st.fr.Advance() // first iteration computes every (owned) tile
	// EASYPAP's classic setup: every interior cell starts with 5 grains
	// (unstable), the one-cell border stays empty and absorbs grains.
	for y := 1; y < dim-1; y++ {
		for x := 1; x < dim-1; x++ {
			st.cur[y*dim+x] = 5
		}
	}
	ctx.SetPriv(st)
	sandRefresh(ctx)
	return nil
}

func sandStateOf(ctx *core.Ctx) *sandState { return ctx.Priv().(*sandState) }

// sandRefresh maps grain counts to colors (0..3 grains: dark ramp; 4+:
// bright red — still unstable).
func sandRefresh(ctx *core.Ctx) {
	st := sandStateOf(ctx)
	palette := [4]img2d.Pixel{
		img2d.Black,
		img2d.RGB(60, 60, 160),
		img2d.RGB(80, 160, 220),
		img2d.RGB(240, 240, 170),
	}
	grain := func(g uint32) img2d.Pixel {
		if g < 4 {
			return palette[g]
		}
		return img2d.Red
	}
	if ctx.Comm == nil {
		im := ctx.Cur()
		for y := 0; y < st.dim; y++ {
			row := im.Row(y)
			for x := 0; x < st.dim; x++ {
				row[x] = grain(st.cur[y*st.dim+x])
			}
		}
		return
	}
	// Collective: each rank contributes its painted band; master copies.
	pixels := make([]uint32, st.band.Rows()*st.dim)
	for y := st.band.Lo; y < st.band.Hi; y++ {
		for x := 0; x < st.dim; x++ {
			pixels[(y-st.band.Lo)*st.dim+x] = uint32(grain(st.cur[y*st.dim+x]))
		}
	}
	full, err := ctx.Comm.GatherBands(0, st.band, pixels)
	if err != nil || full == nil {
		return
	}
	copy(ctx.Cur().Pixels(), full)
}

// sandStepTile computes the synchronous topple step for a tile, returning
// whether any cell in the tile is still unstable or changed. Border cells
// (the absorbing rim) always stay zero.
func (s *sandState) sandStepTile(x, y, w, h int) bool {
	active := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			idx := yy*s.dim + xx
			if yy == 0 || yy == s.dim-1 || xx == 0 || xx == s.dim-1 {
				s.next[idx] = 0
				continue
			}
			v := s.cur[idx] % 4
			v += s.cur[idx-1]/4 + s.cur[idx+1]/4 + s.cur[idx-s.dim]/4 + s.cur[idx+s.dim]/4
			s.next[idx] = v
			if v != s.cur[idx] || v >= 4 {
				active = true
			}
		}
	}
	return active
}

func sandSeq(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		active := st.sandStepTile(0, 0, st.dim, st.dim)
		st.cur, st.next = st.next, st.cur
		return active
	})
}

func sandOmpTiled(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.sandStepTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.cur, st.next = st.next, st.cur
		// Frontier used for convergence only (and without the []bool the
		// old implementation allocated per iteration).
		return st.fr.Advance() > 0
	})
}

// sandLazyOmp dispatches only the active tiles: a tile re-enters the
// frontier when it (or an 8-neighbour) changed or still holds an unstable
// cell — the exact continuation criterion of the eager variants, so
// iteration counts and final boards match them byte for byte. Skipped
// tiles need no copy: see the tilegrid no-copy invariant (a skipped tile
// was computed-and-steady, so both grain buffers already agree on it).
func sandLazyOmp(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.sandStepTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.cur, st.next = st.next, st.cur
		return st.fr.Advance() > 0
	})
}

// curAt reads a grain count with ghost-row support: the rows just outside
// the rank's band come from the exchanged ghost rows. The world border is
// absorbing (always zero), so out-of-world reads are zero — the mpi step
// never actually performs them because border cells short-circuit.
func (s *sandState) curAt(y, x int) uint32 {
	if y < s.band.Lo {
		if s.ghostAbove != nil && y == s.band.Lo-1 {
			return s.ghostAbove[x]
		}
		return 0
	}
	if y >= s.band.Hi {
		if s.ghostBelow != nil && y == s.band.Hi {
			return s.ghostBelow[x]
		}
		return 0
	}
	return s.cur[y*s.dim+x]
}

// sandStepTileGhost is sandStepTile reading vertical neighbours through
// curAt — same arithmetic, band-boundary rows see the neighbour rank's
// grains.
func (s *sandState) sandStepTileGhost(x, y, w, h int) bool {
	active := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			idx := yy*s.dim + xx
			if yy == 0 || yy == s.dim-1 || xx == 0 || xx == s.dim-1 {
				s.next[idx] = 0
				continue
			}
			v := s.cur[idx] % 4
			v += s.cur[idx-1]/4 + s.cur[idx+1]/4 + s.curAt(yy-1, xx)/4 + s.curAt(yy+1, xx)/4
			s.next[idx] = v
			if v != s.cur[idx] || v >= 4 {
				active = true
			}
		}
	}
	return active
}

// sandHalo builds the frontier-aware halo engine for a rank: boundary rows
// travel as little-endian uint32 grain counts (4 bytes per cell — counts
// can transiently exceed 255), frontier flags ride in the same packet, and
// quiet edges are skipped. A converged band region stops exchanging even
// while distant avalanches continue.
func sandHalo(ctx *core.Ctx, st *sandState) *mpi.Halo {
	return &mpi.Halo{
		C: ctx.Comm, Band: st.band, Fr: st.fr, TileH: st.tileH,
		EncodeRow: func(y int) []byte {
			row := make([]byte, 4*st.dim)
			for x := 0; x < st.dim; x++ {
				binary.LittleEndian.PutUint32(row[4*x:], st.cur[y*st.dim+x])
			}
			return row
		},
		SetGhost: func(side int, row []byte) {
			ghost := &st.ghostAbove
			if side >= 0 {
				ghost = &st.ghostBelow
			}
			if *ghost == nil {
				*ghost = make([]uint32, st.dim)
			}
			for x := 0; x < st.dim && 4*x+4 <= len(row); x++ {
				(*ghost)[x] = binary.LittleEndian.Uint32(row[4*x:])
			}
		},
		OnStep: ctx.ReportHalo,
	}
}

// sandMPIOmp distributes row bands across ranks: sparse dispatch of the
// active avalanche tiles, one frontier-aware halo exchange per iteration.
// Dense phases (the initial all-unstable pile) exchange every edge every
// iteration — the honest comms tax — while the late sparse phase skips
// most of them.
func sandMPIOmp(ctx *core.Ctx, nbIter int) int {
	st := sandStateOf(ctx)
	if ctx.Comm == nil {
		return 0 // mpi variant requires --mpirun
	}
	if st.halo == nil {
		st.halo = sandHalo(ctx, st)
		if err := st.halo.Prime(); err != nil {
			return 0
		}
	}
	var marked atomic.Bool
	return ctx.ForIterations(nbIter, func(int) bool {
		marked.Store(false)
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.sandStepTileGhost(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
				marked.Store(true)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.cur, st.next = st.next, st.cur
		cont, err := st.halo.Step(marked.Load())
		if err != nil {
			return false // distributed session aborted by the world
		}
		return cont
	})
}

// SandGrainsSnapshot exposes a copy of the grain grid for tests.
func SandGrainsSnapshot(ctx *core.Ctx) []uint32 {
	st := sandStateOf(ctx)
	out := make([]uint32, len(st.cur))
	copy(out, st.cur)
	return out
}
