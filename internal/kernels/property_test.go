package kernels

// Property-based tests on kernel invariants, using testing/quick where the
// input space is enumerable and direct generation where images are needed.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/sched"
)

// randomImage fills a dim x dim image with seeded noise.
func randomImage(dim int, seed int64) *img2d.Image {
	im := img2d.New(dim)
	rng := rand.New(rand.NewSource(seed))
	pix := im.Pixels()
	for i := range pix {
		pix[i] = img2d.RGB(uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)))
	}
	return im
}

// TestQuickBlurFastEqualsSafeInside: on interior tiles, the branch-free
// blur core must compute exactly what the bounds-checked reference
// computes, for arbitrary images and tile positions.
func TestQuickBlurFastEqualsSafeInside(t *testing.T) {
	const dim = 48
	f := func(seed int64, xr, yr uint8) bool {
		src := randomImage(dim, seed)
		a, b := img2d.New(dim), img2d.New(dim)
		// Interior rectangle: keep one pixel away from every edge.
		x := 1 + int(xr)%(dim-17)
		y := 1 + int(yr)%(dim-17)
		blurTileSafe(src, a, dim, x, y, 16, 16)
		blurTileFast(src, b, x, y, 16, 16)
		for yy := y; yy < y+16; yy++ {
			for xx := x; xx < x+16; xx++ {
				if a.Get(yy, xx) != b.Get(yy, xx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickInvertInvolution: invert(invert(p)) == p for every pixel value.
func TestQuickInvertInvolution(t *testing.T) {
	f := func(p uint32) bool {
		return invertPixel(invertPixel(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickInvertPreservesAlpha: inversion flips color channels only.
func TestQuickInvertPreservesAlpha(t *testing.T) {
	f := func(p uint32) bool {
		return img2d.A(invertPixel(p)) == img2d.A(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTransposeTileIsExactTranspose: transposing arbitrary tiles then
// reading back gives src[y][x] == dst[x][y].
func TestQuickTransposeTileIsExactTranspose(t *testing.T) {
	const dim = 32
	f := func(seed int64, tileRaw uint8) bool {
		src := randomImage(dim, seed)
		dst := img2d.New(dim)
		g := sched.MustTileGrid(dim, 8, 8)
		tile := int(tileRaw) % g.Tiles()
		x, y, w, h := g.Coords(tile)
		transposeTile(src, dst, x, y, w, h)
		for yy := y; yy < y+h; yy++ {
			for xx := x; xx < x+w; xx++ {
				if dst.Get(xx, yy) != src.Get(yy, xx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickLifeLazyEqualsSeq: for arbitrary random seeds, the lazy variant
// matches the sequential one after several generations.
func TestQuickLifeLazyEqualsSeq(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		ref, err := core.Run(core.Config{Kernel: "life", Variant: "seq", Dim: 32,
			TileW: 8, TileH: 8, Iterations: 5, Seed: seed, NoDisplay: true})
		if err != nil {
			return false
		}
		lazy, err := core.Run(core.Config{Kernel: "life", Variant: "lazy", Dim: 32,
			TileW: 8, TileH: 8, Iterations: 5, Seed: seed, NoDisplay: true,
			Threads: 4, Schedule: sched.DynamicPolicy(1)})
		if err != nil {
			return false
		}
		return ref.Final.Equal(lazy.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestASandpileAbelianProperty is the deep invariant of the asynchronous
// sandpile: the stable configuration does not depend on the topple order.
// Sequential sweeps, parallel tiled execution under different schedules,
// and the synchronous kernel must all stabilize to the same board.
func TestASandpileAbelianProperty(t *testing.T) {
	const dim = 32
	run := func(kernel, variant string, pol sched.Policy) []uint32 {
		t.Helper()
		cfg := core.Config{Kernel: kernel, Variant: variant, Dim: dim,
			TileW: 8, TileH: 8, Iterations: 1 << 20, NoDisplay: true,
			Threads: 4, Schedule: pol}
		out, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.Iterations >= 1<<20 {
			t.Fatalf("%s/%s did not stabilize", kernel, variant)
		}
		// Convert the final image back to grain classes 0..3 via the
		// palette is lossy; instead rerun via snapshot helpers is not
		// possible post-Run. Compare final images: the palette is
		// injective on 0..3 grains, and stable boards only hold 0..3.
		return pixelsAsGrains(out.Final)
	}
	refAsync := run("asandpile", "seq", sched.StaticPolicy)
	parDyn := run("asandpile", "omp_tiled", sched.DynamicPolicy(1))
	parSteal := run("asandpile", "omp_tiled", sched.NonmonotonicPolicy)
	sync := run("sandpile", "seq", sched.StaticPolicy)
	for i := range refAsync {
		if refAsync[i] != parDyn[i] {
			t.Fatalf("async parallel (dynamic) differs from async seq at %d: %d != %d",
				i, parDyn[i], refAsync[i])
		}
		if refAsync[i] != parSteal[i] {
			t.Fatalf("async parallel (steal) differs from async seq at %d", i)
		}
		if refAsync[i] != sync[i] {
			t.Fatalf("synchronous sandpile differs from async at %d: %d != %d",
				i, sync[i], refAsync[i])
		}
	}
}

// pixelsAsGrains inverts the sandpile palette (stable cells only).
func pixelsAsGrains(im *img2d.Image) []uint32 {
	palette := map[img2d.Pixel]uint32{
		img2d.Black:              0,
		img2d.RGB(60, 60, 160):   1,
		img2d.RGB(80, 160, 220):  2,
		img2d.RGB(240, 240, 170): 3,
	}
	out := make([]uint32, im.Len())
	for i, p := range im.Pixels() {
		out[i] = palette[p]
	}
	return out
}

// TestASandpileGrainConservation: until grains start falling off the
// absorbing border, toppling conserves the total grain count. With a small
// interior pile the first iterations keep everything inside.
func TestASandpileGrainConservation(t *testing.T) {
	// Use the exported snapshot on a hand-driven context via core.Run with
	// 0 iterations (snapshot of the initial board) vs 1 iteration board
	// painted back. Instead drive the tile function directly.
	const dim = 16
	st := &asandState{dim: dim, cells: make([]uint32, dim*dim)}
	st.cells[8*dim+8] = 40 // one tall central pile
	total := func() (sum uint32) {
		for _, v := range st.cells {
			sum += v
		}
		return
	}
	before := total()
	for i := 0; i < 3; i++ {
		st.asandSeqTile(0, 0, dim, dim)
		if got := total(); got != before {
			t.Fatalf("grains not conserved: %d -> %d", before, got)
		}
	}
	// Atomic variant conserves as well.
	st2 := &asandState{dim: dim, cells: make([]uint32, dim*dim)}
	st2.cells[8*dim+8] = 40
	for i := 0; i < 3; i++ {
		st2.asandAtomicTile(0, 0, dim, dim)
	}
	sum2 := uint32(0)
	for _, v := range st2.cells {
		sum2 += v
	}
	if sum2 != before {
		t.Fatalf("atomic topple lost grains: %d -> %d", before, sum2)
	}
}

func TestScrollupVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "scrollup", 64, 16, 5, []string{"omp", "omp_tiled"}, testSchedules)
}

// TestScrollupFullCycleIsIdentity: scrolling dim times returns the
// original image.
func TestScrollupFullCycleIsIdentity(t *testing.T) {
	const dim = 32
	out := runKernel(t, core.Config{Kernel: "scrollup", Dim: dim, TileW: 8, TileH: 8,
		Iterations: dim})
	fresh := img2d.New(dim)
	testPattern(fresh)
	if !out.Final.Equal(fresh) {
		t.Error("scrolling a full cycle did not restore the image")
	}
	one := runKernel(t, core.Config{Kernel: "scrollup", Dim: dim, TileW: 8, TileH: 8,
		Iterations: 1})
	if one.Final.Equal(fresh) {
		t.Error("one scroll step left the image unchanged")
	}
	// Row 0 after one step is the original row 1.
	for x := 0; x < dim; x++ {
		if one.Final.Get(0, x) != fresh.Get(1, x) {
			t.Fatalf("scrolled row 0 pixel %d mismatch", x)
		}
	}
}

// TestMandelDeterministicAcrossSchedules: the mandel image is a pure
// function of the viewport, so any schedule and thread count must yield
// the same pixels (quick-checked over schedules).
func TestMandelDeterministicAcrossSchedules(t *testing.T) {
	ref := runKernel(t, core.Config{Kernel: "mandel", Dim: 64, TileW: 8, TileH: 8,
		Iterations: 1})
	f := func(kindRaw, chunkRaw, threadsRaw uint8) bool {
		kinds := []sched.PolicyKind{sched.Static, sched.StaticChunk, sched.Dynamic,
			sched.Guided, sched.Nonmonotonic}
		pol := sched.Policy{Kind: kinds[int(kindRaw)%len(kinds)], Chunk: int(chunkRaw)%8 + 1}
		threads := int(threadsRaw)%8 + 1
		out, err := core.Run(core.Config{Kernel: "mandel", Variant: "omp_tiled",
			Dim: 64, TileW: 8, TileH: 8, Iterations: 1, NoDisplay: true,
			Threads: threads, Schedule: pol})
		if err != nil {
			return false
		}
		return out.Final.Equal(ref.Final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
