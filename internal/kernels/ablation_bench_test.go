package kernels

// Kernel-level ablation benchmarks: tile-size sweep for mandel (the
// paper's grain axis), instrumentation overhead (monitoring/tracing off vs
// on), and lazy-evaluation gain on sparse Game of Life boards.

import (
	"fmt"
	"path/filepath"
	"testing"

	"easypap/internal/core"
	"easypap/internal/sched"
)

func benchRun(b *testing.B, cfg core.Config) {
	b.Helper()
	cfg.NoDisplay = true
	if _, err := core.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationMandelTileSize sweeps the grain (square tile size): too
// small pays scheduling overhead, too large loses balance — the trade-off
// behind the paper's Fig. 6 grain panels.
func BenchmarkAblationMandelTileSize(b *testing.B) {
	for _, tile := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("tile=%d", tile), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRun(b, core.Config{
					Kernel: "mandel", Variant: "omp_tiled", Dim: 512,
					TileW: tile, TileH: tile, Iterations: 1,
					Schedule: sched.DynamicPolicy(2),
				})
			}
		})
	}
}

// BenchmarkAblationInstrumentation measures the cost of monitoring and
// tracing relative to a bare run — the overhead EASYPAP accepts to give
// students feedback.
func BenchmarkAblationInstrumentation(b *testing.B) {
	base := core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: 512,
		TileW: 16, TileH: 16, Iterations: 1,
		Schedule: sched.DynamicPolicy(2),
	}
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRun(b, base)
		}
	})
	b.Run("monitoring", func(b *testing.B) {
		cfg := base
		cfg.Monitoring = true
		for i := 0; i < b.N; i++ {
			benchRun(b, cfg)
		}
	})
	b.Run("tracing", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.TracePath = filepath.Join(dir, fmt.Sprintf("t%d.evt", i))
			benchRun(b, cfg)
		}
	})
}

// BenchmarkAblationLifeLazy quantifies the lazy-evaluation gain on the
// sparse diagonal dataset vs the dense full recomputation, and where the
// branch-free bit-packed kernel lands against both.
func BenchmarkAblationLifeLazy(b *testing.B) {
	for _, variant := range []string{"omp_tiled", "lazy", "bitpack"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRun(b, core.Config{
					Kernel: "life", Variant: variant, Dim: 512,
					TileW: 8, TileH: 8, Iterations: 10, Arg: "diag",
					Schedule: sched.DynamicPolicy(1),
				})
			}
		})
	}
}

// BenchmarkLazyEngineKernels measures the tilegrid engine's eager-vs-lazy
// gain for every kernel pair sharing it: life on the sparse diag dataset,
// the synchronous sandpile mid-avalanche, and the fire front sweeping a
// full forest. These are the BENCH_lazy.json rows.
func BenchmarkLazyEngineKernels(b *testing.B) {
	cases := []struct {
		name  string
		cfg   core.Config
		eager string
		lazy  string
	}{
		{"life-diag-512", core.Config{Kernel: "life", Dim: 512, TileW: 8, TileH: 8,
			Iterations: 10, Arg: "diag", Schedule: sched.DynamicPolicy(1)}, "omp_tiled", "lazy"},
		{"sandpile-256", core.Config{Kernel: "sandpile", Dim: 256, TileW: 16, TileH: 16,
			Iterations: 50, Schedule: sched.DynamicPolicy(1)}, "omp_tiled", "lazy_omp"},
		{"fire-full-512", core.Config{Kernel: "fire", Dim: 512, TileW: 16, TileH: 16,
			Iterations: 60, Arg: "full", Schedule: sched.DynamicPolicy(1)}, "omp_tiled", "lazy"},
	}
	for _, tc := range cases {
		for _, variant := range []string{tc.eager, tc.lazy} {
			b.Run(tc.name+"/"+variant, func(b *testing.B) {
				cfg := tc.cfg
				cfg.Variant = variant
				for i := 0; i < b.N; i++ {
					benchRun(b, cfg)
				}
			})
		}
	}
}

// BenchmarkAblationBlurTileShape compares square and row-shaped tiles for
// the stencil: wide tiles stream rows (cache friendly), squares maximize
// reuse across iterations.
func BenchmarkAblationBlurTileShape(b *testing.B) {
	shapes := []struct{ w, h int }{
		{16, 16}, {32, 32}, {64, 64}, {512, 8}, {8, 512},
	}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("%dx%d", s.w, s.h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRun(b, core.Config{
					Kernel: "blur", Variant: "omp_tiled_opt", Dim: 512,
					TileW: s.w, TileH: s.h, Iterations: 2,
					Schedule: sched.NonmonotonicPolicy,
				})
			}
		})
	}
}
