package kernels

// The blur kernel is the paper's 2D stencil case study (§III-B): each
// iteration averages every pixel's 3x3 neighbourhood from the current
// image into the next one, then swaps. The naive tiled version tests
// bounds at every pixel; the optimized version splits border tiles (which
// keep the tests) from inner tiles (branch-free, unrolled core) — the
// source of the ~3x whole-kernel and ~10x inner-task speedups of Fig. 10.
// Both parallel variants produce bit-identical output to seq.

import (
	"easypap/internal/core"
	"easypap/internal/img2d"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "blur",
		Description: "3x3 box blur (2D stencil)",
		Init:        initTestPattern,
		Variants: map[string]core.ComputeFunc{
			"seq":           blurSeq,
			"omp_tiled":     blurOmpTiled,
			"omp_tiled_opt": blurOmpTiledOpt,
		},
		DefaultVariant: "seq",
	})
}

// blurPixelSafe averages the 3x3 neighbourhood with bounds tests — the
// conditional-heavy code of the students' first attempt.
func blurPixelSafe(src *img2d.Image, dim, y, x int) img2d.Pixel {
	var r, g, b, a, n uint32
	for dy := -1; dy <= 1; dy++ {
		yy := y + dy
		if yy < 0 || yy >= dim {
			continue
		}
		row := src.Row(yy)
		for dx := -1; dx <= 1; dx++ {
			xx := x + dx
			if xx < 0 || xx >= dim {
				continue
			}
			p := row[xx]
			r += p >> 24
			g += p >> 16 & 0xff
			b += p >> 8 & 0xff
			a += p & 0xff
			n++
		}
	}
	return img2d.RGBA(uint8(r/n), uint8(g/n), uint8(b/n), uint8(a/n))
}

// blurTileSafe processes a rectangle with per-pixel bounds tests.
func blurTileSafe(src, dst *img2d.Image, dim, x, y, w, h int) {
	for yy := y; yy < y+h; yy++ {
		drow := dst.Row(yy)
		for xx := x; xx < x+w; xx++ {
			drow[xx] = blurPixelSafe(src, dim, yy, xx)
		}
	}
}

// blurTileFast processes a rectangle known to be strictly inside the image
// (all 9 neighbours exist): no bounds tests, three row pointers held in
// registers, channel sums accumulated in straight-line code. This is the
// branch-free core whose speedup the students discover through the heat
// map and trace comparison; the C version additionally benefits from AVX2
// auto-vectorization (DESIGN.md documents the substitution).
func blurTileFast(src, dst *img2d.Image, x, y, w, h int) {
	for yy := y; yy < y+h; yy++ {
		up, mid, down := src.Row(yy-1), src.Row(yy), src.Row(yy+1)
		drow := dst.Row(yy)
		for xx := x; xx < x+w; xx++ {
			p0, p1, p2 := up[xx-1], up[xx], up[xx+1]
			p3, p4, p5 := mid[xx-1], mid[xx], mid[xx+1]
			p6, p7, p8 := down[xx-1], down[xx], down[xx+1]
			r := p0>>24 + p1>>24 + p2>>24 + p3>>24 + p4>>24 + p5>>24 + p6>>24 + p7>>24 + p8>>24
			g := p0>>16&0xff + p1>>16&0xff + p2>>16&0xff + p3>>16&0xff + p4>>16&0xff +
				p5>>16&0xff + p6>>16&0xff + p7>>16&0xff + p8>>16&0xff
			b := p0>>8&0xff + p1>>8&0xff + p2>>8&0xff + p3>>8&0xff + p4>>8&0xff +
				p5>>8&0xff + p6>>8&0xff + p7>>8&0xff + p8>>8&0xff
			a := p0&0xff + p1&0xff + p2&0xff + p3&0xff + p4&0xff +
				p5&0xff + p6&0xff + p7&0xff + p8&0xff
			drow[xx] = img2d.RGBA(uint8(r/9), uint8(g/9), uint8(b/9), uint8(a/9))
		}
	}
}

func blurSeq(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		blurTileSafe(ctx.Cur(), ctx.Next(), dim, 0, 0, dim, dim)
		ctx.Swap()
		return true
	})
}

// blurOmpTiled is the students' first parallel stencil: uniform tiles, all
// paying the bounds tests.
func blurOmpTiled(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			blurTileSafe(src, dst, dim, x, y, w, h)
			ctx.AddWork(worker, int64(w*h)) // pixels touched
			ctx.EndTile(x, y, w, h, worker)
		})
		ctx.Swap()
		return true
	})
}

// blurOmpTiledOpt distinguishes outer tiles (touching the image border,
// conditional code kept) from inner tiles (branch-free fast path). The
// heat map of Fig. 9b shows the border ring burning brighter; the trace
// comparison of Fig. 10 quantifies the win.
func blurOmpTiledOpt(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	grid := ctx.Grid
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		ctx.Pool.ParallelFor(grid.Tiles(), ctx.Cfg.Schedule, func(tile, worker int) {
			x, y, w, h := grid.Coords(tile)
			ctx.StartTile(worker)
			if grid.IsBorder(tile) {
				blurTileBorder(src, dst, dim, x, y, w, h)
			} else {
				blurTileFast(src, dst, x, y, w, h)
			}
			ctx.AddWork(worker, int64(w*h)) // pixels touched
			ctx.EndTile(x, y, w, h, worker)
		})
		ctx.Swap()
		return true
	})
}

// blurTileBorder handles a border tile: the one-pixel rim uses the safe
// path, the tile interior (when the tile is away from the image edge on a
// given side) still uses the fast path row by row. This mirrors what
// students converge to: conditionals only where they are needed.
func blurTileBorder(src, dst *img2d.Image, dim, x, y, w, h int) {
	for yy := y; yy < y+h; yy++ {
		edgeRow := yy == 0 || yy == dim-1
		drow := dst.Row(yy)
		for xx := x; xx < x+w; xx++ {
			if edgeRow || xx == 0 || xx == dim-1 {
				drow[xx] = blurPixelSafe(src, dim, yy, xx)
			} else {
				up, mid, down := src.Row(yy-1), src.Row(yy), src.Row(yy+1)
				p0, p1, p2 := up[xx-1], up[xx], up[xx+1]
				p3, p4, p5 := mid[xx-1], mid[xx], mid[xx+1]
				p6, p7, p8 := down[xx-1], down[xx], down[xx+1]
				r := p0>>24 + p1>>24 + p2>>24 + p3>>24 + p4>>24 + p5>>24 + p6>>24 + p7>>24 + p8>>24
				g := p0>>16&0xff + p1>>16&0xff + p2>>16&0xff + p3>>16&0xff + p4>>16&0xff +
					p5>>16&0xff + p6>>16&0xff + p7>>16&0xff + p8>>16&0xff
				b := p0>>8&0xff + p1>>8&0xff + p2>>8&0xff + p3>>8&0xff + p4>>8&0xff +
					p5>>8&0xff + p6>>8&0xff + p7>>8&0xff + p8>>8&0xff
				a := p0&0xff + p1&0xff + p2&0xff + p3&0xff + p4&0xff +
					p5&0xff + p6&0xff + p7&0xff + p8&0xff
				drow[xx] = img2d.RGBA(uint8(r/9), uint8(g/9), uint8(b/9), uint8(a/9))
			}
		}
	}
}
