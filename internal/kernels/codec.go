package kernels

// State codecs for iteration-prefix checkpointing (core.StateCodec): each
// opted-in kernel serializes its private board plus the tilegrid frontier
// bitset, so a run checkpointed after iteration k resumes with both the
// cell values and the exact active-tile set the next iteration would have
// dispatched. All four stencil kernels share one envelope; the per-kernel
// part is only which buffer holds the board and how wide a cell is.
//
// The envelope is deliberately dumb — length-prefixed board bytes plus
// frontier words behind a fixed magic. Integrity (CRC) and identity (the
// prefix-hash key) belong to the EZSNAP1 record in internal/serve/store;
// this layer only rejects geometry mismatches so a snapshot can never be
// restored into a differently shaped run.

import (
	"encoding/binary"
	"fmt"

	"easypap/internal/core"
	"easypap/internal/tilegrid"
)

// kernelStateMagic heads every encoded kernel state.
const kernelStateMagic = "EZK1"

// encodeKernelState wraps board bytes and frontier words in the shared
// envelope: magic, board length, word count, then the payloads.
func encodeKernelState(board []byte, words []uint64) []byte {
	out := make([]byte, 0, len(kernelStateMagic)+16+len(board)+8*len(words))
	out = append(out, kernelStateMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(board)))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(words)))
	out = append(out, board...)
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// decodeKernelState unwraps an envelope, insisting the board is exactly
// wantBoard bytes (the restoring run's geometry — a mismatch means the
// snapshot belongs to another configuration and must not be applied).
func decodeKernelState(data []byte, wantBoard int) (board []byte, words []uint64, err error) {
	head := len(kernelStateMagic) + 16
	if len(data) < head || string(data[:len(kernelStateMagic)]) != kernelStateMagic {
		return nil, nil, fmt.Errorf("kernel state: bad envelope header")
	}
	boardLen := binary.LittleEndian.Uint64(data[len(kernelStateMagic):])
	wordCount := binary.LittleEndian.Uint64(data[len(kernelStateMagic)+8:])
	if boardLen != uint64(wantBoard) {
		return nil, nil, fmt.Errorf("kernel state: board is %d bytes, this run needs %d", boardLen, wantBoard)
	}
	if uint64(len(data)) != uint64(head)+boardLen+8*wordCount {
		return nil, nil, fmt.Errorf("kernel state: %d bytes, envelope declares %d",
			len(data), uint64(head)+boardLen+8*wordCount)
	}
	board = data[head : uint64(head)+boardLen]
	words = make([]uint64, wordCount)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[uint64(head)+boardLen+uint64(8*i):])
	}
	return board, words, nil
}

// u32Bytes serializes a uint32 cell grid little-endian.
func u32Bytes(cells []uint32) []byte {
	out := make([]byte, 0, 4*len(cells))
	for _, c := range cells {
		out = binary.LittleEndian.AppendUint32(out, c)
	}
	return out
}

// u32Fill deserializes little-endian bytes into a uint32 cell grid.
func u32Fill(dst []uint32, b []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
}

// noBandCheckpoint rejects checkpointing of MPI band ranks: a band holds
// only its rows, so its encoded state is not the whole-grid state the
// snapshot key promises.
func noBandCheckpoint(ctx *core.Ctx, kernel string) error {
	if ctx.Comm != nil {
		return fmt.Errorf("%s: cannot checkpoint one rank of a band decomposition", kernel)
	}
	return nil
}

// restoreFrontier applies saved frontier words, translating the error to
// the kernel's name.
func restoreFrontier(fr *tilegrid.Frontier, words []uint64, kernel string) error {
	if err := fr.Restore(words); err != nil {
		return fmt.Errorf("%s: %w", kernel, err)
	}
	return nil
}

// lifeCodec round-trips the life board (one byte per cell) and frontier.
// The bitpack variant needs no extra state: its packed buffer is rebuilt
// lazily from the restored byte board on the first compute call, exactly
// as on a cold run (life_bitpack.go keeps the byte board current after
// every compute call, so the encoded board is always the live state).
type lifeCodec struct{}

func (lifeCodec) EncodeState(ctx *core.Ctx) ([]byte, error) {
	if err := noBandCheckpoint(ctx, "life"); err != nil {
		return nil, err
	}
	st := lifeStateOf(ctx)
	return encodeKernelState(st.cur, st.fr.Words()), nil
}

func (lifeCodec) DecodeState(ctx *core.Ctx, data []byte) error {
	if err := noBandCheckpoint(ctx, "life"); err != nil {
		return err
	}
	st := lifeStateOf(ctx)
	board, words, err := decodeKernelState(data, len(st.cur))
	if err != nil {
		return fmt.Errorf("life: %w", err)
	}
	// Both buffers get the board: tiles outside the restored frontier are
	// never recomputed, and the no-copy invariant requires their cells to
	// be identical across the double buffer.
	copy(st.cur, board)
	copy(st.next, board)
	st.bits = nil
	return restoreFrontier(st.fr, words, "life")
}

// fireCodec round-trips the forest (one byte per cell) and frontier.
type fireCodec struct{}

func (fireCodec) EncodeState(ctx *core.Ctx) ([]byte, error) {
	if err := noBandCheckpoint(ctx, "fire"); err != nil {
		return nil, err
	}
	st := fireStateOf(ctx)
	return encodeKernelState(st.cur, st.fr.Words()), nil
}

func (fireCodec) DecodeState(ctx *core.Ctx, data []byte) error {
	if err := noBandCheckpoint(ctx, "fire"); err != nil {
		return err
	}
	st := fireStateOf(ctx)
	board, words, err := decodeKernelState(data, len(st.cur))
	if err != nil {
		return fmt.Errorf("fire: %w", err)
	}
	copy(st.cur, board)
	copy(st.next, board)
	return restoreFrontier(st.fr, words, "fire")
}

// sandCodec round-trips the synchronous sandpile grains (uint32 LE per
// cell) and frontier.
type sandCodec struct{}

func (sandCodec) EncodeState(ctx *core.Ctx) ([]byte, error) {
	if err := noBandCheckpoint(ctx, "sandpile"); err != nil {
		return nil, err
	}
	st := sandStateOf(ctx)
	return encodeKernelState(u32Bytes(st.cur), st.fr.Words()), nil
}

func (sandCodec) DecodeState(ctx *core.Ctx, data []byte) error {
	if err := noBandCheckpoint(ctx, "sandpile"); err != nil {
		return err
	}
	st := sandStateOf(ctx)
	board, words, err := decodeKernelState(data, 4*len(st.cur))
	if err != nil {
		return fmt.Errorf("sandpile: %w", err)
	}
	u32Fill(st.cur, board)
	u32Fill(st.next, board)
	return restoreFrontier(st.fr, words, "sandpile")
}

// asandCodec round-trips the asynchronous sandpile's single in-place
// grain buffer (uint32 LE per cell) and frontier. Encode runs on the
// iteration boundary, after every worker has finished, so plain loads
// see the settled values the atomics published.
type asandCodec struct{}

func (asandCodec) EncodeState(ctx *core.Ctx) ([]byte, error) {
	if err := noBandCheckpoint(ctx, "asandpile"); err != nil {
		return nil, err
	}
	st := asandStateOf(ctx)
	return encodeKernelState(u32Bytes(st.cells), st.fr.Words()), nil
}

func (asandCodec) DecodeState(ctx *core.Ctx, data []byte) error {
	if err := noBandCheckpoint(ctx, "asandpile"); err != nil {
		return err
	}
	st := asandStateOf(ctx)
	board, words, err := decodeKernelState(data, 4*len(st.cells))
	if err != nil {
		return fmt.Errorf("asandpile: %w", err)
	}
	u32Fill(st.cells, board)
	return restoreFrontier(st.fr, words, "asandpile")
}
