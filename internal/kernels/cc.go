package kernels

// Connected components detection (§III-C): identify the connected
// components of an image (regions separated by transparent pixels) by
// coloring each in a unique color. Init reassigns every opaque pixel a
// unique color; each iteration then propagates the local maximum in two
// phases — bottom-right, then up-left — until a steady state is reached.
//
// The task variant implements the paper's Fig. 11: a tiled decomposition
// where, during the bottom-right phase, a tile may only run after its left
// and upper neighbours completed (and symmetrically for the up-left
// phase). These constraints translate directly into taskdep dependencies
// and yield the diagonal wavefront of Fig. 12. The overconstrained variant
// reproduces the classic student mistake — chaining every tile through one
// dependency — which serializes execution.

import (
	"math/rand"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/taskdep"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "cc",
		Description: "connected components labeling by max propagation",
		Init:        ccInit,
		Variants: map[string]core.ComputeFunc{
			"seq":                  ccSeq,
			"task":                 ccTask,
			"task_overconstrained": ccTaskOverconstrained,
		},
		DefaultVariant: "seq",
	})
}

// ccInit draws random opaque discs on a transparent background, then
// reassigns each opaque pixel a unique color (encoding its linear index),
// the first step of the proposed algorithm.
func ccInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	im := ctx.Cur()
	im.Fill(img2d.Transparent)
	rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 7))
	// Enough discs that several overlap into larger components.
	discs := max(dim/16, 4)
	for i := 0; i < discs; i++ {
		cy, cx := rng.Intn(dim), rng.Intn(dim)
		r := dim/24 + rng.Intn(max(dim/12, 2))
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy > r*r {
					continue
				}
				y, x := cy+dy, cx+dx
				if y >= 0 && y < dim && x >= 0 && x < dim {
					im.Set(y, x, img2d.White)
				}
			}
		}
	}
	// Unique labels: the linear pixel index in the RGB bits, alpha 255.
	for y := 0; y < dim; y++ {
		row := im.Row(y)
		for x := range row {
			if row[x] != img2d.Transparent {
				row[x] = img2d.Pixel(y*dim+x)<<8 | 0xff
			}
		}
	}
	return nil
}

// ccOpaque reports whether the pixel belongs to a component.
func ccOpaque(p img2d.Pixel) bool { return p&0xff != 0 }

// ccPropagateDR performs the bottom-right propagation over a rectangle
// in row-major order: each opaque pixel takes the max of itself and its
// left/upper opaque neighbours. Returns whether anything changed.
func ccPropagateDR(im *img2d.Image, dim, x, y, w, h int) bool {
	changed := false
	for yy := y; yy < y+h; yy++ {
		row := im.Row(yy)
		for xx := x; xx < x+w; xx++ {
			p := row[xx]
			if !ccOpaque(p) {
				continue
			}
			best := p
			if xx > 0 {
				if l := row[xx-1]; ccOpaque(l) && l > best {
					best = l
				}
			}
			if yy > 0 {
				if u := im.Get(yy-1, xx); ccOpaque(u) && u > best {
					best = u
				}
			}
			if best != p {
				row[xx] = best
				changed = true
			}
		}
	}
	return changed
}

// ccPropagateUL performs the up-left propagation in reverse row-major
// order: each opaque pixel takes the max of itself and its right/lower
// opaque neighbours.
func ccPropagateUL(im *img2d.Image, dim, x, y, w, h int) bool {
	changed := false
	for yy := y + h - 1; yy >= y; yy-- {
		row := im.Row(yy)
		for xx := x + w - 1; xx >= x; xx-- {
			p := row[xx]
			if !ccOpaque(p) {
				continue
			}
			best := p
			if xx < dim-1 {
				if r := row[xx+1]; ccOpaque(r) && r > best {
					best = r
				}
			}
			if yy < dim-1 {
				if d := im.Get(yy+1, xx); ccOpaque(d) && d > best {
					best = d
				}
			}
			if best != p {
				row[xx] = best
				changed = true
			}
		}
	}
	return changed
}

// ccSeq is the sequential two-phase iteration.
func ccSeq(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		c1 := ccPropagateDR(im, dim, 0, 0, dim, dim)
		c2 := ccPropagateUL(im, dim, 0, 0, dim, dim)
		return c1 || c2
	})
}

// ccTask is the Fig. 11 implementation: per-phase task graphs whose
// dependencies enforce the propagation order between tiles. Change
// detection is per-tile (single writer per slot).
func ccTask(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	grid := ctx.Grid
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		changed := make([]bool, grid.Tiles())

		// Phase 1: bottom-right wave. depend(in: tile[i-1][j],
		// tile[i][j-1]) depend(inout: tile[i][j]).
		g := taskdep.New()
		for ty := 0; ty < grid.TilesY; ty++ {
			for tx := 0; tx < grid.TilesX; tx++ {
				tile := ty*grid.TilesX + tx
				x, y, w, h := grid.Coords(tile)
				deps := taskdep.Deps{InOut: []any{tile}}
				if tx > 0 {
					deps.In = append(deps.In, tile-1)
				}
				if ty > 0 {
					deps.In = append(deps.In, tile-grid.TilesX)
				}
				g.AddTile("cc_dr", x, y, w, h, func(int) {
					if ccPropagateDR(im, dim, x, y, w, h) {
						changed[tile] = true
					}
				}, deps)
			}
		}
		if err := g.Run(ctx.Pool, taskObserver{ctx}); err != nil {
			return false
		}

		// Phase 2: up-left wave, mirrored dependencies (right and lower
		// neighbours first).
		g2 := taskdep.New()
		for ty := grid.TilesY - 1; ty >= 0; ty-- {
			for tx := grid.TilesX - 1; tx >= 0; tx-- {
				tile := ty*grid.TilesX + tx
				x, y, w, h := grid.Coords(tile)
				deps := taskdep.Deps{InOut: []any{tile}}
				if tx < grid.TilesX-1 {
					deps.In = append(deps.In, tile+1)
				}
				if ty < grid.TilesY-1 {
					deps.In = append(deps.In, tile+grid.TilesX)
				}
				g2.AddTile("cc_ul", x, y, w, h, func(int) {
					if ccPropagateUL(im, dim, x, y, w, h) {
						changed[tile] = true
					}
				}, deps)
			}
		}
		if err := g2.Run(ctx.Pool, taskObserver{ctx}); err != nil {
			return false
		}

		for _, c := range changed {
			if c {
				return true
			}
		}
		return false
	})
}

// ccTaskOverconstrained chains every tile of each phase through a single
// inout address: the dependence pattern students accidentally write when
// they over-constrain, turning the wave into a fully sequential schedule
// (§III-C: "most of the time, they over-constrain the problem and end up
// with a sequential execution of tasks"). The result is still correct —
// just slow — and EASYVIEW makes the serialization obvious.
func ccTaskOverconstrained(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	grid := ctx.Grid
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		changed := make([]bool, grid.Tiles())
		g := taskdep.New()
		for tile := 0; tile < grid.Tiles(); tile++ {
			x, y, w, h := grid.Coords(tile)
			t := tile
			g.AddTile("cc_dr", x, y, w, h, func(int) {
				if ccPropagateDR(im, dim, x, y, w, h) {
					changed[t] = true
				}
			}, taskdep.Deps{InOut: []any{"everything"}})
		}
		if err := g.Run(ctx.Pool, taskObserver{ctx}); err != nil {
			return false
		}
		g2 := taskdep.New()
		for tile := grid.Tiles() - 1; tile >= 0; tile-- {
			x, y, w, h := grid.Coords(tile)
			t := tile
			g2.AddTile("cc_ul", x, y, w, h, func(int) {
				if ccPropagateUL(im, dim, x, y, w, h) {
					changed[t] = true
				}
			}, taskdep.Deps{InOut: []any{"everything"}})
		}
		if err := g2.Run(ctx.Pool, taskObserver{ctx}); err != nil {
			return false
		}
		for _, c := range changed {
			if c {
				return true
			}
		}
		return false
	})
}

// CCLabelCount returns the number of distinct component labels in the
// image (transparent pixels excluded) — the number of connected components
// once the algorithm converged.
func CCLabelCount(im *img2d.Image) int {
	labels := make(map[img2d.Pixel]struct{})
	for _, p := range im.Pixels() {
		if ccOpaque(p) {
			labels[p] = struct{}{}
		}
	}
	return len(labels)
}
