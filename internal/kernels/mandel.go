package kernels

// The mandel kernel computes the Mandelbrot set and zooms a little at each
// iteration, exactly as the paper's Fig. 1. Checking set membership is
// independent per pixel, so the kernel is trivially parallel — but the
// wildly varying per-pixel cost (in-set pixels pay the full iteration
// budget) makes it the canonical load-balancing study (paper §III-A,
// Figs. 3, 4, 6, 8, 9a).

import (
	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/sched"
	"easypap/internal/taskdep"
)

// mandelMaxIter is the escape iteration budget (EASYPAP uses 4096; the
// ratio between in-set and far-outside pixels is what creates imbalance).
const mandelMaxIter = 4096

// mandelView is the kernel-private viewport, shrunk by zoom() each
// iteration toward a visually interesting point on the set's boundary.
type mandelView struct {
	leftX, rightX float64
	topY, bottomY float64
}

func newMandelView() *mandelView {
	return &mandelView{leftX: -0.2395, rightX: -0.2275, topY: 0.660, bottomY: 0.648}
}

// zoom shrinks the viewport by 1% — the paper's zoom() step.
func (v *mandelView) zoom() {
	const factor = 0.99
	xr := (v.rightX - v.leftX) * (1 - factor) / 2
	yr := (v.topY - v.bottomY) * (1 - factor) / 2
	v.leftX += xr
	v.rightX -= xr
	v.topY -= yr
	v.bottomY += yr
}

// computeColor iterates z = z^2 + c for the pixel (y, x) and maps the
// escape iteration to a color (black for in-set pixels). The escape
// iteration count is also returned: it is the pixel's work-unit cost,
// reported as the task's performance counter.
func (v *mandelView) computeColor(y, x, dim int) (img2d.Pixel, int) {
	xstep := (v.rightX - v.leftX) / float64(dim)
	ystep := (v.topY - v.bottomY) / float64(dim)
	cr := v.leftX + xstep*float64(x)
	ci := v.topY - ystep*float64(y)
	zr, zi := 0.0, 0.0
	iter := 0
	for ; iter < mandelMaxIter; iter++ {
		zr2 := zr * zr
		zi2 := zi * zi
		if zr2+zi2 > 4.0 {
			break
		}
		zi = 2*zr*zi + ci
		zr = zr2 - zi2 + cr
	}
	if iter == mandelMaxIter {
		return img2d.Black, iter
	}
	hue := float64(iter%256) / 255 * 360
	return img2d.HSV(hue, 0.8, 1), iter
}

// mandelTile computes all pixels of a rectangle — the do_tile body — and
// returns the tile's total work (escape iterations).
func mandelTile(v *mandelView, im *img2d.Image, dim, x, y, w, h int) int64 {
	var work int64
	for i := y; i < y+h; i++ {
		row := im.Row(i)
		for j := x; j < x+w; j++ {
			p, iters := v.computeColor(i, j, dim)
			row[j] = p
			work += int64(iters)
		}
	}
	return work
}

func mandelState(ctx *core.Ctx) *mandelView { return ctx.Priv().(*mandelView) }

func init() {
	core.Register(&core.Kernel{
		Name:        "mandel",
		Description: "Mandelbrot set with per-iteration zoom",
		Init: func(ctx *core.Ctx) error {
			ctx.SetPriv(newMandelView())
			return nil
		},
		Variants: map[string]core.ComputeFunc{
			"seq":       mandelSeq,
			"omp":       mandelOmp,
			"omp_tiled": mandelOmpTiled,
			"team":      mandelTeam,
			"task":      mandelTask,
		},
		DefaultVariant: "seq",
	})
}

// mandelSeq is the paper's Fig. 1 verbatim: two nested pixel loops per
// iteration followed by zoom().
func mandelSeq(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	v := mandelState(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		for y := 0; y < dim; y++ {
			row := im.Row(y)
			for x := 0; x < dim; x++ {
				row[x], _ = v.computeColor(y, x, dim)
			}
		}
		v.zoom()
		return true
	})
}

// mandelOmp is the incremental first parallelization of §II-A: a parallel
// for over the rows ("#pragma omp parallel for" before the y loop).
func mandelOmp(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	v := mandelState(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		ctx.Pool.ParallelFor(dim, ctx.Cfg.Schedule, func(y, worker int) {
			ctx.StartTile(worker)
			row := im.Row(y)
			var work int64
			for x := 0; x < dim; x++ {
				var iters int
				row[x], iters = v.computeColor(y, x, dim)
				work += int64(iters)
			}
			ctx.AddWork(worker, work)
			ctx.EndTile(0, y, dim, 1, worker)
		})
		v.zoom()
		return true
	})
}

// mandelOmpTiled is the paper's Fig. 2: collapse(2) over tiles with the
// configured scheduling policy, do_tile instrumented, zoom in a single
// block.
func mandelOmpTiled(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	v := mandelState(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			ctx.AddWork(worker, mandelTile(v, im, dim, x, y, w, h))
			ctx.EndTile(x, y, w, h, worker)
		})
		v.zoom()
		return true
	})
}

// mandelTeam keeps the whole iteration loop inside one parallel region, the
// literal structure of Fig. 2 ("#pragma omp parallel" around the iteration
// loop, "#pragma omp for collapse(2)" inside, zoom under "#pragma omp
// single"). Iteration bracketing must happen inside the region, so this
// variant manages it through Single blocks rather than ForIterations.
func mandelTeam(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	v := mandelState(ctx)
	mon := ctx.Monitor()
	ctx.Pool.Team(func(tc *sched.TeamCtx) {
		for it := 1; it <= nbIter; it++ {
			iter := it
			tc.Single(func() {
				if mon != nil {
					mon.StartIteration(iter)
				}
			})
			im := ctx.Cur()
			tc.ForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
				ctx.StartTile(worker)
				ctx.AddWork(worker, mandelTile(v, im, dim, x, y, w, h))
				ctx.EndTile(x, y, w, h, worker)
			})
			tc.Single(func() {
				v.zoom()
				if mon != nil {
					mon.EndIteration()
				}
			})
		}
	})
	return nbIter
}

// mandelTask expresses every tile as an independent task — no dependencies,
// pure fan-out — demonstrating the task engine on an embarrassingly
// parallel kernel.
func mandelTask(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	v := mandelState(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		g := taskdep.New()
		for tile := 0; tile < ctx.Grid.Tiles(); tile++ {
			x, y, w, h := ctx.Grid.Coords(tile)
			g.AddTile("mandel", x, y, w, h, func(worker int) {
				ctx.AddWork(worker, mandelTile(v, im, dim, x, y, w, h))
			}, taskdep.Deps{})
		}
		if err := g.Run(ctx.Pool, taskObserver{ctx}); err != nil {
			return false
		}
		v.zoom()
		return true
	})
}

// taskObserver bridges the task engine to the framework instrumentation:
// every executed task is recorded as an instrumented span (monitoring and
// KindTask trace events), so the wavefront of Fig. 12 shows up in EASYVIEW.
type taskObserver struct{ ctx *core.Ctx }

func (o taskObserver) TaskStart(t *taskdep.Task, worker int) { o.ctx.StartTask(worker) }
func (o taskObserver) TaskEnd(t *taskdep.Task, worker int) {
	o.ctx.EndTask(t.X, t.Y, t.W, t.H, worker)
}
