package kernels

// The introductory kernels students meet in their first EASYPAP session:
// spin (a rotating color wheel), invert (per-pixel color inversion),
// transpose (image transposition) and pixelize (mosaic averaging). Each
// exists in sequential and parallel variants to demonstrate the incremental
// "duplicate, rename, add a pragma" workflow of §II-A.

import (
	"math"

	"easypap/internal/core"
	"easypap/internal/img2d"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "spin",
		Description: "rotating color wheel (hello-world kernel)",
		Init: func(ctx *core.Ctx) error {
			ctx.SetPriv(new(float64)) // current base angle
			spinDraw(ctx, 0)
			return nil
		},
		Variants: map[string]core.ComputeFunc{
			"seq": spinSeq,
			"omp": spinOmp,
		},
		DefaultVariant: "seq",
	})

	core.Register(&core.Kernel{
		Name:        "invert",
		Description: "per-pixel color inversion",
		Init:        initTestPattern,
		Variants: map[string]core.ComputeFunc{
			"seq":       invertSeq,
			"omp":       invertOmp,
			"omp_tiled": invertOmpTiled,
		},
		DefaultVariant: "seq",
	})

	core.Register(&core.Kernel{
		Name:        "transpose",
		Description: "image transposition across the main diagonal",
		Init:        initTestPattern,
		Variants: map[string]core.ComputeFunc{
			"seq":       transposeSeq,
			"tiled":     transposeTiled,
			"omp_tiled": transposeOmpTiled,
		},
		DefaultVariant: "seq",
	})

	core.Register(&core.Kernel{
		Name:        "pixelize",
		Description: "mosaic effect: each tile becomes its average color",
		Init:        initTestPattern,
		Variants: map[string]core.ComputeFunc{
			"seq":       pixelizeSeq,
			"omp_tiled": pixelizeOmpTiled,
		},
		DefaultVariant: "seq",
	})
}

// --- spin ---------------------------------------------------------------

// spinDraw paints the color wheel at the given base angle.
func spinDraw(ctx *core.Ctx, base float64) {
	dim := ctx.Dim()
	c := float64(dim) / 2
	im := ctx.Cur()
	for y := 0; y < dim; y++ {
		row := im.Row(y)
		for x := 0; x < dim; x++ {
			angle := math.Atan2(float64(y)-c, float64(x)-c)*180/math.Pi + base
			row[x] = img2d.HSV(angle, 1, 1)
		}
	}
}

func spinAngle(ctx *core.Ctx) *float64 { return ctx.Priv().(*float64) }

func spinSeq(ctx *core.Ctx, nbIter int) int {
	return ctx.ForIterations(nbIter, func(int) bool {
		*spinAngle(ctx) += 5
		spinDraw(ctx, *spinAngle(ctx))
		return true
	})
}

func spinOmp(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	c := float64(dim) / 2
	return ctx.ForIterations(nbIter, func(int) bool {
		*spinAngle(ctx) += 5
		base := *spinAngle(ctx)
		im := ctx.Cur()
		ctx.Pool.ParallelFor(dim, ctx.Cfg.Schedule, func(y, worker int) {
			ctx.StartTile(worker)
			row := im.Row(y)
			for x := 0; x < dim; x++ {
				angle := math.Atan2(float64(y)-c, float64(x)-c)*180/math.Pi + base
				row[x] = img2d.HSV(angle, 1, 1)
			}
			ctx.EndTile(0, y, dim, 1, worker)
		})
		return true
	})
}

// --- invert --------------------------------------------------------------

// invertPixel flips the color channels, preserving alpha.
func invertPixel(p img2d.Pixel) img2d.Pixel { return p ^ 0xffffff00 }

func invertSeq(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		for y := 0; y < dim; y++ {
			row := im.Row(y)
			for x := range row {
				row[x] = invertPixel(row[x])
			}
		}
		return true
	})
}

func invertOmp(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		ctx.Pool.ParallelFor(dim, ctx.Cfg.Schedule, func(y, worker int) {
			ctx.StartTile(worker)
			row := im.Row(y)
			for x := range row {
				row[x] = invertPixel(row[x])
			}
			ctx.EndTile(0, y, dim, 1, worker)
		})
		return true
	})
}

func invertOmpTiled(ctx *core.Ctx, nbIter int) int {
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			for yy := y; yy < y+h; yy++ {
				row := im.Row(yy)
				for xx := x; xx < x+w; xx++ {
					row[xx] = invertPixel(row[xx])
				}
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		return true
	})
}

// --- transpose -----------------------------------------------------------

func transposeSeq(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		for y := 0; y < dim; y++ {
			row := src.Row(y)
			for x := 0; x < dim; x++ {
				dst.Set(x, y, row[x])
			}
		}
		ctx.Swap()
		return true
	})
}

// transposeTiled is the cache-friendly sequential version: transposing tile
// by tile keeps both source and destination lines resident.
func transposeTiled(ctx *core.Ctx, nbIter int) int {
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		for tile := 0; tile < ctx.Grid.Tiles(); tile++ {
			x, y, w, h := ctx.Grid.Coords(tile)
			transposeTile(src, dst, x, y, w, h)
		}
		ctx.Swap()
		return true
	})
}

func transposeOmpTiled(ctx *core.Ctx, nbIter int) int {
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			transposeTile(src, dst, x, y, w, h)
			ctx.EndTile(x, y, w, h, worker)
		})
		ctx.Swap()
		return true
	})
}

func transposeTile(src, dst *img2d.Image, x, y, w, h int) {
	for yy := y; yy < y+h; yy++ {
		row := src.Row(yy)
		for xx := x; xx < x+w; xx++ {
			dst.Set(xx, yy, row[xx])
		}
	}
}

// --- pixelize ------------------------------------------------------------

func pixelizeSeq(ctx *core.Ctx, nbIter int) int {
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		for tile := 0; tile < ctx.Grid.Tiles(); tile++ {
			x, y, w, h := ctx.Grid.Coords(tile)
			pixelizeTile(im, x, y, w, h)
		}
		return true
	})
}

func pixelizeOmpTiled(ctx *core.Ctx, nbIter int) int {
	return ctx.ForIterations(nbIter, func(int) bool {
		im := ctx.Cur()
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			pixelizeTile(im, x, y, w, h)
			ctx.EndTile(x, y, w, h, worker)
		})
		return true
	})
}

// pixelizeTile replaces the tile with its average color.
func pixelizeTile(im *img2d.Image, x, y, w, h int) {
	var r, g, b, a uint64
	for yy := y; yy < y+h; yy++ {
		row := im.Row(yy)
		for xx := x; xx < x+w; xx++ {
			p := row[xx]
			r += uint64(img2d.R(p))
			g += uint64(img2d.G(p))
			b += uint64(img2d.B(p))
			a += uint64(img2d.A(p))
		}
	}
	n := uint64(w * h)
	avg := img2d.RGBA(uint8(r/n), uint8(g/n), uint8(b/n), uint8(a/n))
	for yy := y; yy < y+h; yy++ {
		row := im.Row(yy)
		for xx := x; xx < x+w; xx++ {
			row[xx] = avg
		}
	}
}
