package kernels

// Resume-equivalence battery for the kernel state codecs: a run that
// snapshots at iteration k and a run resumed from that snapshot must
// together be indistinguishable from one straight run — byte-identical
// final image, same total iteration count, and (for lazy variants) the
// same per-iteration frontier activity after the resume point. This is
// the contract that lets the serving layer (internal/serve) substitute
// a stored checkpoint for recomputing the shared iteration prefix.

import (
	"context"
	"fmt"
	"testing"

	"easypap/internal/core"
)

// ckptConfig is the battery's shared geometry: small enough for the CI
// box, large enough that 24 iterations leave every kernel's frontier
// still moving (no early convergence steals the snapshot points).
func ckptConfig(kernel, variant string, seed int64) core.Config {
	return core.Config{
		Kernel: kernel, Variant: variant, Dim: 64, TileW: 8, TileH: 8,
		Iterations: 24, Threads: 2, Seed: seed, NoDisplay: true,
	}
}

func runWith(t *testing.T, cfg core.Config, opts core.RunOptions) *core.RunOutput {
	t.Helper()
	out, err := core.RunWith(context.Background(), cfg, opts)
	if err != nil {
		t.Fatalf("running %s/%s: %v", cfg.Kernel, cfg.Variant, err)
	}
	return out
}

func TestResumeEquivalence(t *testing.T) {
	const every = 8
	cases := []struct{ kernel, variant string }{
		// eager and lazy variants of every codec-capable kernel, plus the
		// bit-packed life representation (its codec snapshots the byte
		// board and repacks on restore).
		{"life", "seq"},
		{"life", "lazy"},
		{"life", "bitpack"},
		{"fire", "seq"},
		{"fire", "lazy"},
		{"sandpile", "seq"},
		{"sandpile", "lazy_omp"},
		{"asandpile", "seq"},
		{"asandpile", "lazy_omp"},
	}
	for _, tc := range cases {
		for _, seed := range []int64{3, 11} {
			t.Run(fmt.Sprintf("%s/%s/seed%d", tc.kernel, tc.variant, seed), func(t *testing.T) {
				cfg := ckptConfig(tc.kernel, tc.variant, seed)
				ref := runWith(t, cfg, core.RunOptions{})

				// Checkpointed run: identical result, snapshots on the side.
				snaps := make(map[int][]byte)
				ck := runWith(t, cfg, core.RunOptions{
					SnapshotEvery: every,
					OnSnapshot: func(iter int, state []byte) {
						snaps[iter] = append([]byte(nil), state...)
					},
				})
				if !ck.Final.Equal(ref.Final) {
					t.Fatal("snapshotting perturbed the run: final image differs from straight run")
				}
				if ck.Result.Iterations != ref.Result.Iterations {
					t.Fatalf("snapshotting changed iteration count: %d vs %d",
						ck.Result.Iterations, ref.Result.Iterations)
				}
				// Every cadence boundary is snapshotted, INCLUDING the final
				// iteration — the end-state snapshot is what a deeper run of
				// the same prefix resumes from.
				for _, want := range []int{every, 2 * every, cfg.Iterations} {
					if _, ok := snaps[want]; !ok {
						t.Fatalf("no snapshot at iteration %d (got %v)", want, keys(snaps))
					}
				}

				// Resume from every mid-run snapshot: byte-identical to the
				// straight run, with the prefix credited, not recomputed.
				for iter, state := range snaps {
					if iter >= cfg.Iterations {
						continue // end-state snapshot: only deeper runs consume it
					}
					res := runWith(t, cfg, core.RunOptions{
						Resume: &core.ResumeState{Iter: iter, State: state},
					})
					if !res.Final.Equal(ref.Final) {
						t.Errorf("resume from iter %d: final image differs from straight run", iter)
					}
					if res.Result.Iterations != ref.Result.Iterations {
						t.Errorf("resume from iter %d: total iterations %d, want %d",
							iter, res.Result.Iterations, ref.Result.Iterations)
					}
					if res.Result.ResumedFrom != iter {
						t.Errorf("resume from iter %d: ResumedFrom = %d", iter, res.Result.ResumedFrom)
					}
					assertActivitySuffix(t, ref.Result, res.Result, iter)
				}
			})
		}
	}
}

// keys lists a snapshot map's iterations (for failure messages).
func keys(m map[int][]byte) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// assertActivitySuffix checks that a resumed lazy run reports exactly
// the straight run's frontier activity for every iteration after the
// resume point — the restored frontier bitsets must reproduce the
// original active sets, not merely converge to the same image.
func assertActivitySuffix(t *testing.T, ref, res core.Result, from int) {
	t.Helper()
	refAt := make(map[int]core.IterActivity, len(ref.Activity))
	for _, a := range ref.Activity {
		refAt[a.Iter] = a
	}
	for _, a := range res.Activity {
		if a.Iter <= from {
			t.Errorf("resumed run reported activity for iteration %d inside the resumed prefix (from=%d)", a.Iter, from)
			continue
		}
		want, ok := refAt[a.Iter]
		if !ok {
			t.Errorf("resumed run reported activity at iteration %d the straight run never reached", a.Iter)
			continue
		}
		if a.Active != want.Active || a.Total != want.Total {
			t.Errorf("iteration %d activity: resumed %d/%d, straight %d/%d",
				a.Iter, a.Active, a.Total, want.Active, want.Total)
		}
	}
}

// TestResumeRejectsGeometryMismatch pins the codec's refusal to restore
// a snapshot into a run with different geometry: the state bytes encode
// the board length, and a dim change must fail loudly, not corrupt.
func TestResumeRejectsGeometryMismatch(t *testing.T) {
	cfg := ckptConfig("life", "seq", 3)
	var state []byte
	runWith(t, cfg, core.RunOptions{
		SnapshotEvery: 8,
		OnSnapshot: func(iter int, s []byte) {
			if state == nil {
				state = append([]byte(nil), s...)
			}
		},
	})
	if state == nil {
		t.Fatal("no snapshot produced")
	}
	bigger := cfg
	bigger.Dim = 128
	_, err := core.RunWith(context.Background(), bigger, core.RunOptions{
		Resume: &core.ResumeState{Iter: 8, State: state},
	})
	if err == nil {
		t.Fatal("resuming a dim-64 snapshot into a dim-128 run succeeded")
	}
}

// TestResumeRejectsOutOfRangeIter pins the run-loop guard: a resume
// iteration must lie strictly inside (0, Iterations).
func TestResumeRejectsOutOfRangeIter(t *testing.T) {
	cfg := ckptConfig("life", "seq", 3)
	for _, iter := range []int{0, -1, cfg.Iterations, cfg.Iterations + 5} {
		_, err := core.RunWith(context.Background(), cfg, core.RunOptions{
			Resume: &core.ResumeState{Iter: iter, State: []byte("junk")},
		})
		if err == nil {
			t.Errorf("resume at iteration %d of %d succeeded", iter, cfg.Iterations)
		}
	}
}
