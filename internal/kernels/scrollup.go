package kernels

// scrollup shifts the whole image up by one pixel per iteration, the row
// that falls off the top reappearing at the bottom — one of the trivial
// warm-up kernels of the first EASYPAP hands-on session. Its interest is
// pedagogical: the obvious per-row parallelization has a read-after-write
// hazard (row y reads row y+1), which the cur/next double buffer removes.

import (
	"easypap/internal/core"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "scrollup",
		Description: "scroll the image up by one pixel per iteration",
		Init:        initTestPattern,
		Variants: map[string]core.ComputeFunc{
			"seq":       scrollSeq,
			"omp":       scrollOmp,
			"omp_tiled": scrollOmpTiled,
		},
		DefaultVariant: "seq",
	})
}

func scrollSeq(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		for y := 0; y < dim; y++ {
			copy(dst.Row(y), src.Row((y+1)%dim))
		}
		ctx.Swap()
		return true
	})
}

func scrollOmp(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		ctx.Pool.ParallelFor(dim, ctx.Cfg.Schedule, func(y, worker int) {
			ctx.StartTile(worker)
			copy(dst.Row(y), src.Row((y+1)%dim))
			ctx.EndTile(0, y, dim, 1, worker)
		})
		ctx.Swap()
		return true
	})
}

func scrollOmpTiled(ctx *core.Ctx, nbIter int) int {
	dim := ctx.Dim()
	return ctx.ForIterations(nbIter, func(int) bool {
		src, dst := ctx.Cur(), ctx.Next()
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			for yy := y; yy < y+h; yy++ {
				copy(dst.Row(yy)[x:x+w], src.Row((yy + 1) % dim)[x:x+w])
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		ctx.Swap()
		return true
	})
}
