package kernels

// Lazy/eager equivalence: for every kernel with both variants, the lazy
// (sparse-dispatch) variant must produce a byte-identical final image and
// the same iteration count as the eager ones, across several seeds and
// datasets. This is the acceptance gate of the tilegrid engine: the
// no-copy invariant and the neighbourhood marking must never skip a tile
// that would have changed.

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"easypap/internal/core"
	"easypap/internal/sched"
)

// imageHash is the hex SHA-256 of the final image's raw pixels.
func imageHash(t *testing.T, out *core.RunOutput) string {
	t.Helper()
	if out.Final == nil {
		t.Fatal("run produced no final image")
	}
	h := sha256.New()
	for _, p := range out.Final.Pixels() {
		h.Write([]byte{byte(p), byte(p >> 8), byte(p >> 16), byte(p >> 24)})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// assertLazyMatchesEager runs the eager reference and every other listed
// variant over the seeds and asserts identical image hash and iteration
// count.
func assertLazyMatchesEager(t *testing.T, kernel string, dim, tile, iters int,
	eager string, others []string, seeds []int64, arg string) {
	t.Helper()
	for _, seed := range seeds {
		ref := runKernel(t, core.Config{Kernel: kernel, Variant: eager, Dim: dim,
			TileW: tile, TileH: tile, Iterations: iters, Seed: seed, Arg: arg,
			Threads: 4, Schedule: sched.DynamicPolicy(1)})
		refHash := imageHash(t, ref)
		for _, v := range others {
			for _, pol := range testSchedules {
				out := runKernel(t, core.Config{Kernel: kernel, Variant: v, Dim: dim,
					TileW: tile, TileH: tile, Iterations: iters, Seed: seed, Arg: arg,
					Threads: 4, Schedule: pol})
				if got := imageHash(t, out); got != refHash {
					t.Errorf("%s/%s seed=%d arg=%q sched=%v: final image hash %s != eager %s",
						kernel, v, seed, arg, pol, got[:12], refHash[:12])
				}
				if out.Iterations != ref.Iterations {
					t.Errorf("%s/%s seed=%d arg=%q sched=%v: %d iterations, eager did %d",
						kernel, v, seed, arg, pol, out.Iterations, ref.Iterations)
				}
			}
		}
	}
}

func TestLifeLazyEagerHashEquivalence(t *testing.T) {
	seeds := []int64{1, 7, 42}
	// Dense random board: most tiles stay active.
	assertLazyMatchesEager(t, "life", 64, 8, 8, "omp_tiled",
		[]string{"seq", "lazy"}, seeds, "random")
	// Sparse gliders: the frontier hugs the diagonals.
	assertLazyMatchesEager(t, "life", 64, 8, 12, "omp_tiled",
		[]string{"seq", "lazy"}, []int64{1}, "diag")
}

// TestLifeLazyConvergesWithEager: datasets that reach a steady state (or
// die out) must stop the lazy and eager variants at the same iteration.
func TestLifeLazyConvergesWithEager(t *testing.T) {
	for _, arg := range []string{"empty", "blinker"} {
		eager := runKernel(t, core.Config{Kernel: "life", Variant: "omp_tiled",
			Dim: 32, TileW: 8, TileH: 8, Iterations: 20, Arg: arg, Threads: 2})
		lazy := runKernel(t, core.Config{Kernel: "life", Variant: "lazy",
			Dim: 32, TileW: 8, TileH: 8, Iterations: 20, Arg: arg, Threads: 2})
		if eager.Iterations != lazy.Iterations {
			t.Errorf("arg=%q: lazy ran %d iterations, eager %d",
				arg, lazy.Iterations, eager.Iterations)
		}
		// "empty" is steady immediately; "blinker" oscillates forever and
		// must NOT converge (its two tiles keep changing).
		if arg == "empty" && lazy.Iterations != 1 {
			t.Errorf("empty board: lazy ran %d iterations, want 1", lazy.Iterations)
		}
		if arg == "blinker" && lazy.Iterations != 20 {
			t.Errorf("blinker: lazy stopped at %d, want all 20", lazy.Iterations)
		}
	}
}

// TestLifeMPIFrontierMatchesSeq: the MPI variant forwards frontier flags
// across rank boundaries; gliders crossing a band boundary must survive.
func TestLifeMPIFrontierMatchesSeq(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		for _, arg := range []string{"diag", "random"} {
			ref := runKernel(t, core.Config{Kernel: "life", Variant: "seq",
				Dim: 64, TileW: 8, TileH: 8, Iterations: 10, Seed: seed, Arg: arg})
			mpi := runKernel(t, core.Config{Kernel: "life", Variant: "mpi_omp",
				Dim: 64, TileW: 8, TileH: 8, Iterations: 10, Seed: seed, Arg: arg,
				Threads: 2, MPIRanks: 4, Schedule: sched.DynamicPolicy(1)})
			if imageHash(t, ref) != imageHash(t, mpi) {
				t.Errorf("seed=%d arg=%q: mpi_omp image differs from seq", seed, arg)
			}
			if ref.Iterations != mpi.Iterations {
				t.Errorf("seed=%d arg=%q: mpi_omp ran %d iterations, seq %d",
					seed, arg, mpi.Iterations, ref.Iterations)
			}
			// Per-rank band activity merges to whole-grid counts.
			if len(mpi.Result.Activity) != mpi.Iterations {
				t.Fatalf("mpi activity series has %d entries for %d iterations",
					len(mpi.Result.Activity), mpi.Iterations)
			}
			total := (64 / 8) * (64 / 8)
			if first := mpi.Result.Activity[0]; first.Total != total || first.Active != total {
				t.Errorf("merged mpi activity[0] = %d/%d, want whole grid %d/%d",
					first.Active, first.Total, total, total)
			}
		}
	}
}

func TestSandpileLazyEagerHashEquivalence(t *testing.T) {
	// The sandpile init is seed-independent; vary geometry instead. Run
	// both truncated (still toppling) and to convergence.
	for _, tc := range []struct{ dim, tile, iters int }{
		{32, 8, 10},
		{32, 8, 1 << 20}, // to convergence
		{48, 8, 25},
	} {
		assertLazyMatchesEager(t, "sandpile", tc.dim, tc.tile, tc.iters,
			"omp_tiled", []string{"seq", "lazy_omp"}, []int64{0}, "")
	}
}

// TestASandpileLazyStableEquivalence: the asynchronous lazy variant must
// stabilize to the same board as every other topple order (Abelian
// property). Iteration counts may legitimately differ — only the stable
// board is compared.
func TestASandpileLazyStableEquivalence(t *testing.T) {
	run := func(variant string, pol sched.Policy) *core.RunOutput {
		out := runKernel(t, core.Config{Kernel: "asandpile", Variant: variant,
			Dim: 32, TileW: 8, TileH: 8, Iterations: 1 << 20,
			Threads: 4, Schedule: pol})
		if out.Iterations >= 1<<20 {
			t.Fatalf("asandpile/%s did not stabilize", variant)
		}
		return out
	}
	ref := imageHash(t, run("seq", sched.StaticPolicy))
	for _, pol := range testSchedules {
		if got := imageHash(t, run("lazy_omp", pol)); got != ref {
			t.Errorf("lazy_omp (%v): stable board differs from seq", pol)
		}
	}
}

func TestFireLazyEagerHashEquivalence(t *testing.T) {
	seeds := []int64{1, 5, 13}
	for _, arg := range []string{"forest", "sparse", "full"} {
		// Truncated runs (front mid-board) and convergence runs (fire
		// burnt out) both must match.
		assertLazyMatchesEager(t, "fire", 64, 8, 12, "omp_tiled",
			[]string{"seq", "lazy"}, seeds, arg)
	}
	assertLazyMatchesEager(t, "fire", 64, 8, 1<<20, "omp_tiled",
		[]string{"seq", "lazy"}, []int64{1}, "full")
}

// TestLazyVariantsReportActivity: lazy variants must publish their
// frontier-collapse series through Result.Activity — full grid on the
// first iteration, and on sparse datasets a strict subset afterwards.
func TestLazyVariantsReportActivity(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "life", Variant: "lazy",
		Dim: 64, TileW: 8, TileH: 8, Iterations: 10, Arg: "diag", Threads: 2})
	if len(out.Result.Activity) != out.Iterations {
		t.Fatalf("activity series has %d entries for %d iterations",
			len(out.Result.Activity), out.Iterations)
	}
	first := out.Result.Activity[0]
	total := (64 / 8) * (64 / 8)
	if first.Active != total || first.Total != total {
		t.Errorf("first iteration activity = %d/%d, want full grid %d/%d",
			first.Active, first.Total, total, total)
	}
	last := out.Result.Activity[len(out.Result.Activity)-1]
	if last.Active >= total {
		t.Errorf("sparse diag dataset: last iteration still dispatches the full grid (%d/%d)",
			last.Active, last.Total)
	}
	for i, a := range out.Result.Activity {
		if a.Iter != i+1 {
			t.Errorf("activity[%d].Iter = %d, want %d", i, a.Iter, i+1)
		}
	}

	// Eager variants never report.
	eager := runKernel(t, core.Config{Kernel: "life", Variant: "omp_tiled",
		Dim: 64, TileW: 8, TileH: 8, Iterations: 5, Arg: "diag", Threads: 2})
	if eager.Result.Activity != nil {
		t.Errorf("eager variant reported activity: %v", eager.Result.Activity)
	}
}

// TestFireFrontierCollapses: the fire's frontier must grow from the
// ignition tile and collapse back to zero when the fire burns out — the
// curve a serving client watches.
func TestFireFrontierCollapses(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "fire", Variant: "lazy",
		Dim: 64, TileW: 8, TileH: 8, Iterations: 1 << 20, Arg: "full", Threads: 2})
	acts := out.Result.Activity
	if len(acts) < 10 {
		t.Fatalf("full burn finished in %d iterations, expected a long front sweep", len(acts))
	}
	// After the first full-grid scan the frontier shrinks to the front...
	if acts[1].Active >= acts[0].Active {
		t.Errorf("frontier did not shrink after the initial scan: %d -> %d",
			acts[0].Active, acts[1].Active)
	}
	// ...and the final iteration's frontier is small (the dying front).
	lastAct := acts[len(acts)-1]
	if lastAct.Active > lastAct.Total/4 {
		t.Errorf("frontier never collapsed: last iteration dispatched %d/%d tiles",
			lastAct.Active, lastAct.Total)
	}
}
