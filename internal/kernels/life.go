package kernels

// Conway's Game of Life, the paper's "putting it all together" assignment
// (§III-D): low-memory kernel-private data structures (the image is only
// touched on graphical refresh), a lazy evaluation algorithm that skips
// tiles whose neighbourhood was steady at the previous iteration, and an
// MPI+OpenMP variant exchanging ghost-cell rows plus per-tile steadiness
// meta-information between processes (Fig. 13).

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/mpi"
	"easypap/internal/tilegrid"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "life",
		Description: "Conway's Game of Life with lazy tile evaluation",
		Init:        lifeInit,
		Refresh:     lifeRefresh,
		Variants: map[string]core.ComputeFunc{
			"seq":       lifeSeq,
			"omp_tiled": lifeOmpTiled,
			"lazy":      lifeLazy,
			"bitpack":   lifeBitpack,
			"mpi_omp":   lifeMPIOmp,
		},
		DefaultVariant: "seq",
		Codec:          lifeCodec{},
	})
}

// lifeState is the kernel-private board: two byte grids (cur/next) instead
// of pixel buffers — the "own, low memory footprint data structures"
// requirement of §III-D — plus the shared tile-activity frontier
// (internal/tilegrid) that replaces the changed[]/prevChange[] arrays this
// kernel used to maintain privately.
type lifeState struct {
	dim       int
	cur, next []uint8
	tilesX    int
	tilesY    int
	tileW     int
	tileH     int

	// fr tracks which tiles must be computed next iteration. Thanks to
	// the frontier's no-copy invariant (tilegrid package doc), skipped
	// tiles need no cur→next copy: their cells are already identical in
	// both buffers.
	fr *tilegrid.Frontier

	// MPI mode: the rank's band, ghost rows (one above, one below), and
	// the frontier-aware halo engine driving the boundary protocol.
	band       mpi.Band
	ghostAbove []uint8
	ghostBelow []uint8
	halo       *mpi.Halo

	// bits is the packed double buffer of the "bitpack" variant, created
	// lazily on first use (life_bitpack.go).
	bits *lifeBits
}

func (s *lifeState) at(y, x int) uint8     { return s.cur[y*s.dim+x] }
func (s *lifeState) set(y, x int, v uint8) { s.next[y*s.dim+x] = v }
func (s *lifeState) swap()                 { s.cur, s.next = s.next, s.cur }

// curAt reads a cell with ghost-row support: y == band.Lo-1 and y ==
// band.Hi are served from the exchanged ghost rows in MPI mode; outside
// the world everything is dead.
func (s *lifeState) curAt(y, x int) uint8 {
	if x < 0 || x >= s.dim || y < 0 || y >= s.dim {
		return 0
	}
	if y < s.band.Lo {
		if s.ghostAbove != nil && y == s.band.Lo-1 {
			return s.ghostAbove[x]
		}
		return 0
	}
	if y >= s.band.Hi {
		if s.ghostBelow != nil && y == s.band.Hi {
			return s.ghostBelow[x]
		}
		return 0
	}
	return s.at(y, x)
}

// lifeInit seeds the board according to cfg.Arg:
//
//	"random"  — 25% alive, deterministic from cfg.Seed (default)
//	"diag"    — gliders marching along both diagonals, the sparse
//	            "planers" dataset of Fig. 13
//	"blinker" — a single period-2 oscillator in the center
//	"empty"   — all dead (steady immediately: exercises early convergence)
func lifeInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	st := &lifeState{
		dim:    dim,
		cur:    make([]uint8, dim*dim),
		next:   make([]uint8, dim*dim),
		tileW:  ctx.Cfg.TileW,
		tileH:  ctx.Cfg.TileH,
		tilesX: dim / ctx.Cfg.TileW,
		tilesY: dim / ctx.Cfg.TileH,
		band:   mpi.Band{Lo: 0, Hi: dim, Dim: dim},
	}
	st.fr = tilegrid.New(ctx.Grid)

	if ctx.Comm != nil {
		st.band = ctx.Band
		if st.band.Rows()%st.tileH != 0 {
			return fmt.Errorf("life: band of %d rows not divisible by tile height %d",
				st.band.Rows(), st.tileH)
		}
		st.fr.Restrict(st.band.Lo/st.tileH, st.band.Hi/st.tileH)
	}
	// Promote the initial all-active marking: the first iteration computes
	// every (owned) tile, subsequent ones only the frontier.
	st.fr.Advance()

	pattern := ctx.Cfg.Arg
	if pattern == "" {
		pattern = "random"
	}
	switch pattern {
	case "random":
		rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 1))
		for i := range st.cur {
			if rng.Intn(4) == 0 {
				st.cur[i] = 1
			}
		}
	case "diag":
		// Gliders every 16 cells along both diagonals, moving outward.
		for d := 8; d < dim-8; d += 16 {
			placeGlider(st, d, d, false)
			placeGlider(st, d, dim-1-d, true)
		}
	case "blinker":
		c := dim / 2
		for dx := -1; dx <= 1; dx++ {
			st.cur[c*dim+c+dx] = 1
		}
	case "empty":
		// all dead
	default:
		return fmt.Errorf("life: unknown pattern %q (have random, diag, blinker, empty)", pattern)
	}
	ctx.SetPriv(st)
	lifeRefresh(ctx)
	return nil
}

// placeGlider stamps a down-right glider at (y, x); mirrored horizontally
// when mirror is set (down-left).
func placeGlider(st *lifeState, y, x int, mirror bool) {
	shape := [3][3]uint8{
		{0, 1, 0},
		{0, 0, 1},
		{1, 1, 1},
	}
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			xx := x + dx
			if mirror {
				xx = x + 2 - dx
			}
			yy := y + dy
			if yy >= 0 && yy < st.dim && xx >= 0 && xx < st.dim {
				st.cur[yy*st.dim+xx] = shape[dy][dx]
			}
		}
	}
}

func lifeStateOf(ctx *core.Ctx) *lifeState { return ctx.Priv().(*lifeState) }

// lifeRefresh paints the board into the current image — the only moment
// the kernel touches pixels. Under MPI, bands are gathered at the master.
func lifeRefresh(ctx *core.Ctx) {
	st := lifeStateOf(ctx)
	if ctx.Comm == nil {
		paintBoard(ctx.Cur(), st.cur, st.dim, 0, st.dim)
		return
	}
	// Collective: every rank contributes its band; master paints.
	pixels := make([]uint32, st.band.Rows()*st.dim)
	for y := st.band.Lo; y < st.band.Hi; y++ {
		for x := 0; x < st.dim; x++ {
			if st.at(y, x) != 0 {
				pixels[(y-st.band.Lo)*st.dim+x] = uint32(img2d.Yellow)
			} else {
				pixels[(y-st.band.Lo)*st.dim+x] = uint32(img2d.Black)
			}
		}
	}
	full, err := ctx.Comm.GatherBands(0, st.band, pixels)
	if err != nil || full == nil {
		return
	}
	copy(ctx.Cur().Pixels(), full)
}

// paintBoard colors alive cells yellow on black for rows [lo, hi).
func paintBoard(im *img2d.Image, cells []uint8, dim, lo, hi int) {
	for y := lo; y < hi; y++ {
		row := im.Row(y)
		for x := 0; x < dim; x++ {
			if cells[y*dim+x] != 0 {
				row[x] = img2d.Yellow
			} else {
				row[x] = img2d.Black
			}
		}
	}
}

// lifeStepCell applies the B3/S23 rule to one cell using curAt (ghost-row
// aware).
func (s *lifeState) lifeStepCell(y, x int) uint8 {
	n := s.curAt(y-1, x-1) + s.curAt(y-1, x) + s.curAt(y-1, x+1) +
		s.curAt(y, x-1) + s.curAt(y, x+1) +
		s.curAt(y+1, x-1) + s.curAt(y+1, x) + s.curAt(y+1, x+1)
	alive := s.curAt(y, x)
	if alive != 0 {
		if n == 2 || n == 3 {
			return 1
		}
		return 0
	}
	if n == 3 {
		return 1
	}
	return 0
}

// lifeComputeTile steps every cell of the tile, returning whether anything
// changed.
func (s *lifeState) lifeComputeTile(x, y, w, h int) bool {
	changed := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			v := s.lifeStepCell(yy, xx)
			if v != s.at(yy, xx) {
				changed = true
			}
			s.set(yy, xx, v)
		}
	}
	return changed
}

func lifeSeq(ctx *core.Ctx, nbIter int) int {
	st := lifeStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		anyChange := st.lifeComputeTile(0, 0, st.dim, st.dim)
		st.swap()
		return anyChange
	})
}

func lifeOmpTiled(ctx *core.Ctx, nbIter int) int {
	st := lifeStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.lifeComputeTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.swap()
		// Eager variant: the frontier is consulted only for convergence
		// (any change anywhere?), never to skip work.
		return st.fr.Advance() > 0
	})
}

// lifeLazy dispatches only the frontier: tiles whose 3x3 tile
// neighbourhood changed at the previous iteration. Skipped tiles are not
// visited at all — sparse dispatch costs O(active), not O(grid) — and are
// NOT instrumented, so the tiling window shows exactly which areas are
// being computed, the visual check of §III-D ("areas where nothing
// changes are not computed"). No copy-tile fallback is needed: see the
// tilegrid no-copy invariant.
func lifeLazy(ctx *core.Ctx, nbIter int) int {
	st := lifeStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.lifeComputeTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.swap()
		return st.fr.Advance() > 0
	})
}

// lifeHalo builds the frontier-aware halo engine for a rank: boundary
// rows travel bit-packed (binary cells, 8 per byte — the life_bitpack
// layout lifted to the wire, ~8x smaller halos), frontier flags ride in
// the same packet, and quiet edges are skipped entirely. The engine is
// identical in-process and across cluster nodes (internal/serve shards).
func lifeHalo(ctx *core.Ctx, st *lifeState) *mpi.Halo {
	return &mpi.Halo{
		C: ctx.Comm, Band: st.band, Fr: st.fr, TileH: st.tileH,
		EncodeRow: func(y int) []byte {
			return mpi.PackRowBits(st.cur[y*st.dim : (y+1)*st.dim])
		},
		SetGhost: func(side int, row []byte) {
			if side < 0 {
				if st.ghostAbove == nil {
					st.ghostAbove = make([]uint8, st.dim)
				}
				mpi.UnpackRowBits(st.ghostAbove, row)
			} else {
				if st.ghostBelow == nil {
					st.ghostBelow = make([]uint8, st.dim)
				}
				mpi.UnpackRowBits(st.ghostBelow, row)
			}
		},
		OnStep: ctx.ReportHalo,
	}
}

// lifeMPIOmp distributes row bands across ranks; each iteration computes
// the local band's tile frontier with sparse dispatch, then runs one
// frontier-aware halo exchange (mpi.Halo): boundary rows and frontier
// flags ship in one bit-packed packet per *active* edge, quiet edges cost
// nothing, and the convergence vote doubles as the edge-activity
// agreement. The structure is the <150-line MPI+OpenMP solution the
// paper's students produce — now on the shared tile-activity engine, and
// the same code path cluster shards execute across nodes.
func lifeMPIOmp(ctx *core.Ctx, nbIter int) int {
	st := lifeStateOf(ctx)
	if ctx.Comm == nil {
		return 0 // mpi variant requires --mpirun
	}
	if st.halo == nil {
		st.halo = lifeHalo(ctx, st)
		// Initial ghost rows: every edge carries its boundary once so
		// iteration 1 computes against real neighbour values.
		if err := st.halo.Prime(); err != nil {
			return 0
		}
	}
	var marked atomic.Bool
	return ctx.ForIterations(nbIter, func(int) bool {
		// Sparse computation of the local band: the frontier holds only
		// owned tiles; changes mark the 3x3 neighbourhood, possibly
		// spilling into the halo tile rows tyLo-1/tyHi owned by the
		// neighbouring ranks.
		marked.Store(false)
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.lifeComputeTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
				marked.Store(true)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.swap()

		// One halo step: active edges exchange (row + flags), the vote
		// settles both convergence and which edges were active, and the
		// frontier advances with the merged neighbour flags.
		cont, err := st.halo.Step(marked.Load())
		if err != nil {
			return false // a distributed session is aborted by the world
		}
		return cont
	})
}

// LifeBoardSnapshot exposes the current board for tests and benchmarks:
// a copy of the cell array (row-major, 1 = alive). Under MPI each rank
// returns only its own band rows (other rows are zero).
func LifeBoardSnapshot(ctx *core.Ctx) []uint8 {
	st := lifeStateOf(ctx)
	out := make([]uint8, len(st.cur))
	copy(out, st.cur)
	return out
}
