package kernels

// Tests for the per-task performance-counter extension (the PAPI analog of
// the paper's future work): kernels report work units on their trace
// spans, and EASYVIEW correlates them with durations.

import (
	"path/filepath"
	"testing"

	"easypap/internal/core"
	"easypap/internal/sched"
	"easypap/internal/trace"
)

func TestMandelWorkCountersRecorded(t *testing.T) {
	out, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: 128,
		TileW: 16, TileH: 16, Iterations: 1, NoDisplay: true,
		TracePath: filepath.Join(t.TempDir(), "m.evt"),
		Threads:   4, Schedule: sched.DynamicPolicy(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := trace.Work(out.Trace.Events)
	if ws.Count != len(out.Trace.Events) {
		t.Errorf("%d of %d events carry counters", ws.Count, len(out.Trace.Events))
	}
	if ws.TotalWork <= 0 {
		t.Fatal("no work recorded")
	}
	// The whole point of per-task counters: tile cost (escape iterations)
	// explains tile duration. On mandel the correlation is strong.
	if ws.Correlation < 0.6 {
		t.Errorf("work/duration correlation = %.2f, expected strongly positive", ws.Correlation)
	}
	// Total escape iterations are bounded by pixels * budget.
	if maxWork := int64(128 * 128 * 4096); ws.TotalWork > maxWork {
		t.Errorf("total work %d exceeds the theoretical bound %d", ws.TotalWork, maxWork)
	}
}

func TestMandelWorkDeterministicAcrossVariants(t *testing.T) {
	// The total escape-iteration count is a pure function of the viewport,
	// so every variant must report the same total.
	total := func(variant string) int64 {
		out, err := core.Run(core.Config{
			Kernel: "mandel", Variant: variant, Dim: 64,
			TileW: 8, TileH: 8, Iterations: 1, NoDisplay: true,
			TracePath: filepath.Join(t.TempDir(), variant+".evt"),
			Threads:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace.Work(out.Trace.Events).TotalWork
	}
	ref := total("omp_tiled")
	if ref == 0 {
		t.Fatal("no work recorded")
	}
	for _, v := range []string{"omp", "team", "task"} {
		if got := total(v); got != ref {
			t.Errorf("variant %s total work %d != omp_tiled %d", v, got, ref)
		}
	}
}

func TestBlurWorkIsPixelCount(t *testing.T) {
	const dim, tile, iters = 64, 16, 2
	out, err := core.Run(core.Config{
		Kernel: "blur", Variant: "omp_tiled_opt", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iters, NoDisplay: true,
		TracePath: filepath.Join(t.TempDir(), "b.evt"), Threads: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := trace.Work(out.Trace.Events)
	if want := int64(dim * dim * iters); ws.TotalWork != want {
		t.Errorf("total pixels = %d, want %d", ws.TotalWork, want)
	}
	// Every blur tile touches exactly tile*tile pixels.
	for _, e := range out.Trace.Events {
		if e.Work != tile*tile {
			t.Fatalf("tile at (%d,%d) reports %d pixels, want %d", e.X, e.Y, e.Work, tile*tile)
		}
	}
}
