package kernels

// Tests for the per-task performance-counter extension (the PAPI analog of
// the paper's future work): kernels report work units on their trace
// spans, and EASYVIEW correlates them with durations.

import (
	"path/filepath"
	"testing"

	"easypap/internal/core"
	"easypap/internal/sched"
	"easypap/internal/trace"
)

func TestMandelWorkCountersRecorded(t *testing.T) {
	// Assertions here are on counter *presence and bounds*, which are
	// deterministic properties of the computation. Duration-derived
	// expectations (e.g. work/duration correlation) are deliberately NOT
	// asserted: under oversubscription on a small CI box, tile durations
	// include scheduling noise that swamps the signal and made this test
	// ~5% flaky. The correlation contract is exercised by the EASYVIEW
	// statistics tests on synthetic traces with controlled durations.
	const dim = 128
	run := func() trace.WorkStats {
		out, err := core.Run(core.Config{
			Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
			TileW: 16, TileH: 16, Iterations: 1, NoDisplay: true,
			TracePath: filepath.Join(t.TempDir(), "m.evt"),
			Threads:   4, Schedule: sched.DynamicPolicy(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Trace.Events) == 0 {
			t.Fatal("no events recorded")
		}
		ws := trace.Work(out.Trace.Events)
		// Presence: every tile span carries a counter.
		if ws.Count != len(out.Trace.Events) {
			t.Errorf("%d of %d events carry counters", ws.Count, len(out.Trace.Events))
		}
		// Every mandel pixel performs at least one escape iteration, so
		// each 16x16 tile reports at least 256 units and the total lies in
		// [dim*dim, dim*dim*4096].
		for _, e := range out.Trace.Events {
			if e.Work < int64(e.W)*int64(e.H) {
				t.Fatalf("tile at (%d,%d) reports %d units for %dx%d pixels",
					e.X, e.Y, e.Work, e.W, e.H)
			}
		}
		if minWork := int64(dim * dim); ws.TotalWork < minWork {
			t.Errorf("total work %d below the per-pixel floor %d", ws.TotalWork, minWork)
		}
		if maxWork := int64(dim * dim * 4096); ws.TotalWork > maxWork {
			t.Errorf("total work %d exceeds the theoretical bound %d", ws.TotalWork, maxWork)
		}
		return ws
	}
	// Monotonicity/determinism: the counters are a pure function of the
	// viewport, so a second run records exactly the same total.
	first, second := run(), run()
	if first.TotalWork != second.TotalWork {
		t.Errorf("work counters nondeterministic across runs: %d vs %d",
			first.TotalWork, second.TotalWork)
	}
}

func TestMandelWorkDeterministicAcrossVariants(t *testing.T) {
	// The total escape-iteration count is a pure function of the viewport,
	// so every variant must report the same total.
	total := func(variant string) int64 {
		out, err := core.Run(core.Config{
			Kernel: "mandel", Variant: variant, Dim: 64,
			TileW: 8, TileH: 8, Iterations: 1, NoDisplay: true,
			TracePath: filepath.Join(t.TempDir(), variant+".evt"),
			Threads:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace.Work(out.Trace.Events).TotalWork
	}
	ref := total("omp_tiled")
	if ref == 0 {
		t.Fatal("no work recorded")
	}
	for _, v := range []string{"omp", "team", "task"} {
		if got := total(v); got != ref {
			t.Errorf("variant %s total work %d != omp_tiled %d", v, got, ref)
		}
	}
}

func TestBlurWorkIsPixelCount(t *testing.T) {
	const dim, tile, iters = 64, 16, 2
	out, err := core.Run(core.Config{
		Kernel: "blur", Variant: "omp_tiled_opt", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iters, NoDisplay: true,
		TracePath: filepath.Join(t.TempDir(), "b.evt"), Threads: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := trace.Work(out.Trace.Events)
	if want := int64(dim * dim * iters); ws.TotalWork != want {
		t.Errorf("total pixels = %d, want %d", ws.TotalWork, want)
	}
	// Every blur tile touches exactly tile*tile pixels.
	for _, e := range out.Trace.Events {
		if e.Work != tile*tile {
			t.Fatalf("tile at (%d,%d) reports %d pixels, want %d", e.X, e.Y, e.Work, tile*tile)
		}
	}
}
