package kernels

// Forest-fire percolation: a deterministic synchronous automaton born
// frontier-native. Cells are empty ground, trees, burning trees or ash; a
// burning tree turns to ash and ignites its 4-neighbour trees. All
// activity lives on the fire front — a one-cell-thick ring expanding
// through the forest — so the tile frontier starts at the ignition point,
// grows to the ring's tiles, and collapses to zero when the fire burns
// out. Unlike life or the sandpiles (which grew lazy variants after the
// fact), fire was written against internal/tilegrid from the start: the
// proof that the engine's API generalizes to new stencil kernels.
//
// The density of the (seeded, deterministic) random forest puts the run
// on either side of the percolation threshold: dense forests burn wall to
// wall, sparse ones starve the fire early — two very different
// frontier-collapse curves from one kernel, a nice serving-demo workload.

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/mpi"
	"easypap/internal/tilegrid"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "fire",
		Description: "forest-fire percolation on the tile frontier",
		Init:        fireInit,
		Refresh:     fireRefresh,
		Variants: map[string]core.ComputeFunc{
			"seq":       fireSeq,
			"omp_tiled": fireOmpTiled,
			"lazy":      fireLazy,
			"mpi_omp":   fireMPIOmp,
		},
		DefaultVariant: "lazy",
		Codec:          fireCodec{},
	})
}

// Cell states (uint8).
const (
	fireEmpty   = 0 // bare ground: never changes
	fireTree    = 1 // flammable
	fireBurning = 2 // burns for exactly one iteration
	fireAsh     = 3 // burnt out: never changes again
)

// fireState is the double-buffered cell grid plus the tile frontier.
type fireState struct {
	dim       int
	cur, next []uint8
	tileW     int
	tileH     int
	fr        *tilegrid.Frontier

	// MPI mode: the rank's band, exchanged ghost rows and the
	// frontier-aware halo engine (nil otherwise).
	band       mpi.Band
	ghostAbove []uint8
	ghostBelow []uint8
	halo       *mpi.Halo
}

// fireInit seeds the forest according to cfg.Arg:
//
//	"forest" — random trees at 65% density (above the percolation
//	           threshold), center tree ignited (default)
//	"sparse" — 45% density: the fire starves quickly
//	"full"   — every cell a tree, center ignited: the frontier is a
//	           clean expanding diamond
func fireInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	st := &fireState{
		dim:   dim,
		cur:   make([]uint8, dim*dim),
		next:  make([]uint8, dim*dim),
		tileW: ctx.Cfg.TileW,
		tileH: ctx.Cfg.TileH,
		fr:    tilegrid.New(ctx.Grid),
		band:  mpi.Band{Lo: 0, Hi: dim, Dim: dim},
	}
	if ctx.Comm != nil {
		st.band = ctx.Band
		if st.band.Rows()%st.tileH != 0 {
			return fmt.Errorf("fire: band of %d rows not divisible by tile height %d",
				st.band.Rows(), st.tileH)
		}
		st.fr.Restrict(st.band.Lo/st.tileH, st.band.Hi/st.tileH)
	}
	st.fr.Advance() // first iteration scans the whole (owned) forest

	pattern := ctx.Cfg.Arg
	if pattern == "" {
		pattern = "forest"
	}
	density := 0.0
	switch pattern {
	case "forest":
		density = 0.65
	case "sparse":
		density = 0.45
	case "full":
		density = 1.0
	default:
		return fmt.Errorf("fire: unknown pattern %q (have forest, sparse, full)", pattern)
	}
	rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 7))
	for i := range st.cur {
		// Always draw so the forest layout for a given seed does not
		// depend on the density.
		if rng.Float64() < density {
			st.cur[i] = fireTree
		}
	}
	c := dim / 2
	st.cur[c*dim+c] = fireBurning
	copy(st.next, st.cur)
	ctx.SetPriv(st)
	fireRefresh(ctx)
	return nil
}

func fireStateOf(ctx *core.Ctx) *fireState { return ctx.Priv().(*fireState) }

func fireRefresh(ctx *core.Ctx) {
	st := fireStateOf(ctx)
	palette := [4]img2d.Pixel{
		img2d.RGB(24, 20, 12),   // empty: dark soil
		img2d.RGB(30, 140, 40),  // tree
		img2d.RGB(255, 120, 20), // burning
		img2d.RGB(70, 70, 74),   // ash
	}
	if ctx.Comm == nil {
		im := ctx.Cur()
		for y := 0; y < st.dim; y++ {
			row := im.Row(y)
			for x := 0; x < st.dim; x++ {
				row[x] = palette[st.cur[y*st.dim+x]&3]
			}
		}
		return
	}
	// Collective: each rank contributes its painted band; master copies.
	pixels := make([]uint32, st.band.Rows()*st.dim)
	for y := st.band.Lo; y < st.band.Hi; y++ {
		for x := 0; x < st.dim; x++ {
			pixels[(y-st.band.Lo)*st.dim+x] = uint32(palette[st.cur[y*st.dim+x]&3])
		}
	}
	full, err := ctx.Comm.GatherBands(0, st.band, pixels)
	if err != nil || full == nil {
		return
	}
	copy(ctx.Cur().Pixels(), full)
}

// fireStepCell computes a cell's next state: burning → ash; a tree with a
// burning 4-neighbour ignites; everything else is inert.
func (s *fireState) fireStepCell(y, x int) uint8 {
	v := s.cur[y*s.dim+x]
	switch v {
	case fireBurning:
		return fireAsh
	case fireTree:
		if (x > 0 && s.cur[y*s.dim+x-1] == fireBurning) ||
			(x < s.dim-1 && s.cur[y*s.dim+x+1] == fireBurning) ||
			(y > 0 && s.cur[(y-1)*s.dim+x] == fireBurning) ||
			(y < s.dim-1 && s.cur[(y+1)*s.dim+x] == fireBurning) {
			return fireBurning
		}
	}
	return v
}

// fireStepTile advances every cell of the tile, returning whether any cell
// changed. Every cell is written, maintaining the tilegrid no-copy
// invariant for skipped tiles.
func (s *fireState) fireStepTile(x, y, w, h int) bool {
	changed := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			v := s.fireStepCell(yy, xx)
			if v != s.cur[yy*s.dim+xx] {
				changed = true
			}
			s.next[yy*s.dim+xx] = v
		}
	}
	return changed
}

func (s *fireState) swap() { s.cur, s.next = s.next, s.cur }

func fireSeq(ctx *core.Ctx, nbIter int) int {
	st := fireStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		changed := st.fireStepTile(0, 0, st.dim, st.dim)
		st.swap()
		return changed
	})
}

func fireOmpTiled(ctx *core.Ctx, nbIter int) int {
	st := fireStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.fireStepTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.swap()
		return st.fr.Advance() > 0
	})
}

// fireLazy is the frontier-native variant: only tiles touching the fire
// front are dispatched, so per-iteration cost tracks the front's length,
// not the forest's area.
func fireLazy(ctx *core.Ctx, nbIter int) int {
	st := fireStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.fireStepTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.swap()
		return st.fr.Advance() > 0
	})
}

// curAt reads a cell with ghost-row support: the rows just outside the
// rank's band are served from the exchanged ghost rows; outside the world
// everything is bare ground (the existing bounds guards never ignite
// across the world edge, so fireEmpty is the exact equivalent).
func (s *fireState) curAt(y, x int) uint8 {
	if x < 0 || x >= s.dim || y < 0 || y >= s.dim {
		return fireEmpty
	}
	if y < s.band.Lo {
		if s.ghostAbove != nil && y == s.band.Lo-1 {
			return s.ghostAbove[x]
		}
		return fireEmpty
	}
	if y >= s.band.Hi {
		if s.ghostBelow != nil && y == s.band.Hi {
			return s.ghostBelow[x]
		}
		return fireEmpty
	}
	return s.cur[y*s.dim+x]
}

// fireStepCellGhost is fireStepCell reading through curAt — same rule,
// band-boundary rows see the neighbour rank's cells.
func (s *fireState) fireStepCellGhost(y, x int) uint8 {
	v := s.cur[y*s.dim+x]
	switch v {
	case fireBurning:
		return fireAsh
	case fireTree:
		if s.curAt(y, x-1) == fireBurning || s.curAt(y, x+1) == fireBurning ||
			s.curAt(y-1, x) == fireBurning || s.curAt(y+1, x) == fireBurning {
			return fireBurning
		}
	}
	return v
}

// fireStepTileGhost advances a tile through the ghost-aware rule.
func (s *fireState) fireStepTileGhost(x, y, w, h int) bool {
	changed := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			v := s.fireStepCellGhost(yy, xx)
			if v != s.cur[yy*s.dim+xx] {
				changed = true
			}
			s.next[yy*s.dim+xx] = v
		}
	}
	return changed
}

// fireHalo builds the frontier-aware halo engine for a rank: boundary rows
// travel as raw byte rows (four states need the full byte), frontier flags
// ride in the same packet, quiet edges are skipped — on a burnt-out or
// not-yet-reached band edge the exchange costs nothing.
func fireHalo(ctx *core.Ctx, st *fireState) *mpi.Halo {
	return &mpi.Halo{
		C: ctx.Comm, Band: st.band, Fr: st.fr, TileH: st.tileH,
		EncodeRow: func(y int) []byte {
			return append([]byte(nil), st.cur[y*st.dim:(y+1)*st.dim]...)
		},
		SetGhost: func(side int, row []byte) {
			if side < 0 {
				if st.ghostAbove == nil {
					st.ghostAbove = make([]uint8, st.dim)
				}
				copy(st.ghostAbove, row)
			} else {
				if st.ghostBelow == nil {
					st.ghostBelow = make([]uint8, st.dim)
				}
				copy(st.ghostBelow, row)
			}
		},
		OnStep: ctx.ReportHalo,
	}
}

// fireMPIOmp distributes row bands across ranks: sparse dispatch of the
// local fire front, one frontier-aware halo exchange per iteration. The
// fire front is the best case for halo skipping — a band the front has not
// reached (or has burnt through) never touches its edges, so most
// iterations move zero boundary bytes.
func fireMPIOmp(ctx *core.Ctx, nbIter int) int {
	st := fireStateOf(ctx)
	if ctx.Comm == nil {
		return 0 // mpi variant requires --mpirun
	}
	if st.halo == nil {
		st.halo = fireHalo(ctx, st)
		if err := st.halo.Prime(); err != nil {
			return 0
		}
	}
	var marked atomic.Bool
	return ctx.ForIterations(nbIter, func(int) bool {
		marked.Store(false)
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.fireStepTileGhost(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
				marked.Store(true)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		st.swap()
		cont, err := st.halo.Step(marked.Load())
		if err != nil {
			return false // distributed session aborted by the world
		}
		return cont
	})
}

// FireCellsSnapshot exposes a copy of the cell grid for tests.
func FireCellsSnapshot(ctx *core.Ctx) []uint8 {
	st := fireStateOf(ctx)
	out := make([]uint8, len(st.cur))
	copy(out, st.cur)
	return out
}
