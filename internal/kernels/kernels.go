// Package kernels provides the predefined 2D computation kernels EASYPAP
// ships with (paper §II-A): spin, invert, transpose, pixelize, blur,
// mandel, life (Conway's Game of Life), sandpile (Abelian sandpile) and cc
// (connected components), each in several variants — sequential, OpenMP-
// style parallel loops, tiled loops under every scheduling policy,
// dependent tasks, and MPI+OpenMP for the Game of Life.
//
// Kernels self-register with the core registry in their init functions;
// importing this package (for side effects) makes them available to the
// CLI, the examples and the benchmarks.
package kernels

import (
	"easypap/internal/core"
	"easypap/internal/img2d"
)

// testPattern draws the deterministic source image used by the pixel
// transformation kernels (invert, transpose, pixelize, blur): a smooth
// two-axis color gradient with a grid of bright discs, giving every tile
// distinctive content so bugs are visible at a glance.
func testPattern(im *img2d.Image) {
	dim := im.Dim()
	for y := 0; y < dim; y++ {
		row := im.Row(y)
		for x := 0; x < dim; x++ {
			r := uint8(255 * x / max(dim-1, 1))
			g := uint8(255 * y / max(dim-1, 1))
			b := uint8((x ^ y) & 0xff)
			row[x] = img2d.RGB(r, g, b)
		}
	}
	// Bright discs every dim/8 pixels.
	step := max(dim/8, 1)
	radius := max(step/3, 1)
	for cy := step / 2; cy < dim; cy += step {
		for cx := step / 2; cx < dim; cx += step {
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					if dx*dx+dy*dy > radius*radius {
						continue
					}
					y, x := cy+dy, cx+dx
					if y >= 0 && y < dim && x >= 0 && x < dim {
						im.Set(y, x, img2d.White)
					}
				}
			}
		}
	}
}

// initTestPattern is the Init hook shared by the pixel transformation
// kernels.
func initTestPattern(ctx *core.Ctx) error {
	testPattern(ctx.Cur())
	ctx.Next().CopyFrom(ctx.Cur())
	return nil
}
