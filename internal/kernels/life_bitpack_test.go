package kernels

import (
	"testing"
	"testing/quick"

	"easypap/internal/core"
	"easypap/internal/sched"
)

// TestLifeBitpackMatchesSeq: the packed branch-free kernel must produce
// bit-identical boards to the byte-per-cell sequential reference, for
// every seed pattern and across schedule policies (row bands are
// independent, so any chunking must agree).
func TestLifeBitpackMatchesSeq(t *testing.T) {
	for _, pattern := range []string{"random", "diag", "blinker", "empty"} {
		for _, pol := range []sched.Policy{
			sched.StaticPolicy, sched.DynamicPolicy(3), sched.NonmonotonicPolicy,
		} {
			ref, err := core.Run(core.Config{Kernel: "life", Variant: "seq",
				Dim: 64, TileW: 8, TileH: 8, Iterations: 8, Seed: 7,
				Arg: pattern, NoDisplay: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.Run(core.Config{Kernel: "life", Variant: "bitpack",
				Dim: 64, TileW: 8, TileH: 8, Iterations: 8, Seed: 7,
				Arg: pattern, Threads: 4, Schedule: pol, NoDisplay: true})
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Final.Equal(got.Final) {
				t.Errorf("pattern %q pol %v: bitpack board diverged from seq", pattern, pol)
			}
			if ref.Iterations != got.Iterations {
				t.Errorf("pattern %q pol %v: bitpack ran %d iterations, seq ran %d",
					pattern, pol, got.Iterations, ref.Iterations)
			}
		}
	}
}

// TestQuickLifeBitpackEqualsSeq drives the equivalence through arbitrary
// random seeds, including a non-word-aligned board size so the last-word
// mask is exercised.
func TestQuickLifeBitpackEqualsSeq(t *testing.T) {
	for _, dim := range []int{32, 96} {
		f := func(seedRaw uint16) bool {
			seed := int64(seedRaw)
			ref, err := core.Run(core.Config{Kernel: "life", Variant: "seq", Dim: dim,
				TileW: 8, TileH: 8, Iterations: 5, Seed: seed, NoDisplay: true})
			if err != nil {
				return false
			}
			bp, err := core.Run(core.Config{Kernel: "life", Variant: "bitpack", Dim: dim,
				TileW: 8, TileH: 8, Iterations: 5, Seed: seed, NoDisplay: true,
				Threads: 4, Schedule: sched.DynamicPolicy(1)})
			if err != nil {
				return false
			}
			return ref.Final.Equal(bp.Final)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Errorf("dim %d: %v", dim, err)
		}
	}
}

// TestLifeBitpackDisplayModeMatchesSeq runs in display mode (one compute
// call per frame), exercising the pack-once/unpack-per-call consistency
// across repeated compute calls.
func TestLifeBitpackDisplayModeMatchesSeq(t *testing.T) {
	ref, err := core.Run(core.Config{Kernel: "life", Variant: "seq",
		Dim: 64, TileW: 8, TileH: 8, Iterations: 6, Seed: 11, NoDisplay: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(core.Config{Kernel: "life", Variant: "bitpack",
		Dim: 64, TileW: 8, TileH: 8, Iterations: 6, Seed: 11,
		Threads: 4, OutputDir: t.TempDir(), FrameEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Final.Equal(got.Final) {
		t.Error("display-mode bitpack board diverged from seq")
	}
}

// TestLifeBitpackConvergence: the empty board is steady immediately, so
// the variant must stop after one generation like the reference kernels.
func TestLifeBitpackConvergence(t *testing.T) {
	out, err := core.Run(core.Config{Kernel: "life", Variant: "bitpack",
		Dim: 64, TileW: 8, TileH: 8, Iterations: 50, Arg: "empty",
		NoDisplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 1 {
		t.Errorf("empty board ran %d iterations, want 1", out.Iterations)
	}
}

// TestLifeBitsStepMatchesCellRule drives the word-level adder directly
// against the scalar rule on a small dense board, so a packing bug cannot
// hide behind the framework plumbing.
func TestLifeBitsStepMatchesCellRule(t *testing.T) {
	const dim = 67 // straddles the word boundary
	cells := make([]uint8, dim*dim)
	for i := range cells {
		if i%3 == 0 || i%7 == 1 {
			cells[i] = 1
		}
	}
	bb := newLifeBits(dim)
	bb.pack(cells)
	bb.stepRows(0, dim)
	bb.swap()
	got := make([]uint8, dim*dim)
	bb.unpack(got)

	at := func(y, x int) uint8 {
		if x < 0 || x >= dim || y < 0 || y >= dim {
			return 0
		}
		return cells[y*dim+x]
	}
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			n := at(y-1, x-1) + at(y-1, x) + at(y-1, x+1) +
				at(y, x-1) + at(y, x+1) +
				at(y+1, x-1) + at(y+1, x) + at(y+1, x+1)
			want := uint8(0)
			if at(y, x) != 0 {
				if n == 2 || n == 3 {
					want = 1
				}
			} else if n == 3 {
				want = 1
			}
			if got[y*dim+x] != want {
				t.Fatalf("cell (%d,%d): got %d, want %d", y, x, got[y*dim+x], want)
			}
		}
	}
}

// BenchmarkLifeBitpackVsBytes is the showcase ablation: byte-per-cell
// omp_tiled vs the packed branch-free kernel on the same board.
func BenchmarkLifeBitpackVsBytes(b *testing.B) {
	dim := 512
	if testing.Short() {
		dim = 128
	}
	for _, variant := range []string{"omp_tiled", "bitpack"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{Kernel: "life", Variant: variant,
					Dim: dim, TileW: 16, TileH: 16, Iterations: 10, Seed: 42,
					NoDisplay: true, Schedule: sched.StaticPolicy})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
