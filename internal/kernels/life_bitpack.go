package kernels

// Bit-packed Game of Life: 64 cells per machine word, one bit per cell,
// next-state computed branch-free with bit-parallel full adders ("life in
// a register"). Where the byte-per-cell kernel executes a rule branch per
// cell, this variant advances 64 cells per handful of word operations —
// the kind of data-layout optimization the paper's §III-C asks students to
// discover, and the showcase workload for the zero-overhead scheduling
// core (DESIGN.md §5): at these speeds, dispatch overhead is the
// difference the tiling experiments measure.

import (
	"sync/atomic"

	"easypap/internal/core"
)

// lifeBits is the packed double buffer. Rows are wpr words long; bit i of
// word k in a row is the cell at x = k*64 + i. Cells beyond dim in the
// last word are masked dead, and the world border is dead, matching the
// byte kernel's curAt semantics (without MPI ghost rows — this is a
// single-rank variant).
type lifeBits struct {
	dim, wpr  int
	cur, next []uint64
	lastMask  uint64
	zeroRow   []uint64
	changed   atomic.Bool
}

func newLifeBits(dim int) *lifeBits {
	wpr := (dim + 63) / 64
	bb := &lifeBits{
		dim:     dim,
		wpr:     wpr,
		cur:     make([]uint64, dim*wpr),
		next:    make([]uint64, dim*wpr),
		zeroRow: make([]uint64, wpr),
	}
	if r := dim % 64; r != 0 {
		bb.lastMask = (uint64(1) << r) - 1
	} else {
		bb.lastMask = ^uint64(0)
	}
	return bb
}

func (bb *lifeBits) swap() { bb.cur, bb.next = bb.next, bb.cur }

// row returns row y of the given buffer.
func (bb *lifeBits) row(buf []uint64, y int) []uint64 {
	return buf[y*bb.wpr : (y+1)*bb.wpr]
}

// rowOrZero returns row y of cur, or the all-dead row outside the world.
func (bb *lifeBits) rowOrZero(y int) []uint64 {
	if y < 0 || y >= bb.dim {
		return bb.zeroRow
	}
	return bb.row(bb.cur, y)
}

// pack loads the byte board (1 = alive) into the packed cur buffer.
func (bb *lifeBits) pack(cells []uint8) {
	for i := range bb.cur {
		bb.cur[i] = 0
	}
	for y := 0; y < bb.dim; y++ {
		row := bb.row(bb.cur, y)
		base := y * bb.dim
		for x := 0; x < bb.dim; x++ {
			if cells[base+x] != 0 {
				row[x>>6] |= 1 << (uint(x) & 63)
			}
		}
	}
}

// unpack stores the packed cur buffer back into the byte board.
func (bb *lifeBits) unpack(cells []uint8) {
	for y := 0; y < bb.dim; y++ {
		row := bb.row(bb.cur, y)
		base := y * bb.dim
		for x := 0; x < bb.dim; x++ {
			cells[base+x] = uint8(row[x>>6] >> (uint(x) & 63) & 1)
		}
	}
}

// maj64 is the bitwise majority of three words — the carry output of a
// per-bit-position full adder.
func maj64(a, b, c uint64) uint64 { return (a & b) | (c & (a ^ b)) }

// hsum3 computes, for every bit position, the 2-bit count of the cell and
// its two horizontal neighbours: west | center | east, with cross-word
// carries from the adjacent words.
func hsum3(row []uint64, k, wpr int) (s, c uint64) {
	mid := row[k]
	var left, right uint64
	if k > 0 {
		left = row[k-1]
	}
	if k+1 < wpr {
		right = row[k+1]
	}
	west := mid<<1 | left>>63
	east := mid>>1 | right<<63
	return west ^ mid ^ east, maj64(west, mid, east)
}

// stepRows advances rows [lo, hi) of cur into next, branch-free, and
// reports whether any cell in those rows changed. Per word it sums the
// 3x3 neighbourhood (including the center) into a 4-bit per-position
// count via full-adder trees, then applies B3/S23 as
// next = (count==3) | (alive & count==4).
func (bb *lifeBits) stepRows(lo, hi int) bool {
	wpr := bb.wpr
	var diff uint64
	for y := lo; y < hi; y++ {
		up := bb.rowOrZero(y - 1)
		mid := bb.row(bb.cur, y)
		dn := bb.rowOrZero(y + 1)
		out := bb.row(bb.next, y)
		for k := 0; k < wpr; k++ {
			s0u, s1u := hsum3(up, k, wpr)
			s0m, s1m := hsum3(mid, k, wpr)
			s0d, s1d := hsum3(dn, k, wpr)

			// (s1u,s0u) + (s1m,s0m) -> 3-bit partial (r2,r1,r0).
			r0 := s0u ^ s0m
			carry := s0u & s0m
			r1 := s1u ^ s1m ^ carry
			r2 := maj64(s1u, s1m, carry)

			// + (s1d,s0d) -> 4-bit total in [0,9] (t3,t2,t1,t0).
			t0 := r0 ^ s0d
			k0 := r0 & s0d
			t1 := r1 ^ s1d ^ k0
			k1 := maj64(r1, s1d, k0)
			t2 := r2 ^ k1
			t3 := r2 & k1

			alive := mid[k]
			eq3 := ^t3 & ^t2 & t1 & t0
			eq4 := ^t3 & t2 & ^t1 & ^t0
			next := eq3 | (alive & eq4)
			if k == wpr-1 {
				next &= bb.lastMask
			}
			out[k] = next
			diff |= next ^ alive
		}
	}
	return diff != 0
}

// lifeBitpack is the "bitpack" variant: it packs the byte board once per
// compute call, iterates fully packed with the configured schedule over
// row bands, and unpacks on exit so refresh and snapshots see the regular
// board. It is not MPI-aware (full-board only).
func lifeBitpack(ctx *core.Ctx, nbIter int) int {
	st := lifeStateOf(ctx)
	if ctx.Comm != nil {
		// Unreachable through core.Run: Config.Normalize rejects MPI runs
		// of non-mpi variants. Kept as a guard for direct callers.
		return 0
	}
	if st.bits == nil {
		// One pack per run: every compute call ends with an unpack, so
		// the packed buffer and the byte board stay in lockstep across
		// calls (nothing else mutates the board mid-run) and display
		// mode does not pay an O(dim^2) repack per frame.
		st.bits = newLifeBits(st.dim)
		st.bits.pack(st.cur)
	}
	bb := st.bits
	dim := st.dim
	done := ctx.ForIterations(nbIter, func(int) bool {
		bb.changed.Store(false)
		ctx.Pool.ParallelForRanges(dim, ctx.Cfg.Schedule, func(lo, hi, worker int) {
			ctx.StartTile(worker)
			if bb.stepRows(lo, hi) {
				bb.changed.Store(true)
			}
			ctx.EndTile(0, lo, dim, hi-lo, worker)
		})
		bb.swap()
		return bb.changed.Load()
	})
	bb.unpack(st.cur)
	return done
}
