package kernels

import (
	"testing"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/sched"
)

// runKernel runs a kernel variant in performance mode and returns the
// output.
func runKernel(t *testing.T, cfg core.Config) *core.RunOutput {
	t.Helper()
	cfg.NoDisplay = true
	out, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("running %s/%s: %v", cfg.Kernel, cfg.Variant, err)
	}
	return out
}

// assertVariantsMatchSeq runs every listed variant and compares its final
// image with the sequential reference — the fundamental correctness check
// students perform visually ("check if this new variant produces the
// expected output", §II-A).
func assertVariantsMatchSeq(t *testing.T, kernel string, dim, tile, iters int, variants []string, schedules []sched.Policy) {
	t.Helper()
	ref := runKernel(t, core.Config{Kernel: kernel, Variant: "seq", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iters, Seed: 11})
	for _, v := range variants {
		for _, pol := range schedules {
			out := runKernel(t, core.Config{Kernel: kernel, Variant: v, Dim: dim,
				TileW: tile, TileH: tile, Iterations: iters, Threads: 4,
				Schedule: pol, Seed: 11})
			if n := ref.Final.DiffCount(out.Final); n != 0 {
				t.Errorf("%s/%s schedule=%v: %d pixels differ from seq", kernel, v, pol, n)
			}
		}
	}
}

var testSchedules = []sched.Policy{
	sched.StaticPolicy,
	sched.DynamicPolicy(2),
	sched.GuidedPolicy,
	sched.NonmonotonicPolicy,
}

func TestInvertVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "invert", 64, 16, 3, []string{"omp", "omp_tiled"}, testSchedules)
}

func TestInvertIsInvolution(t *testing.T) {
	once := runKernel(t, core.Config{Kernel: "invert", Dim: 64, TileW: 16, TileH: 16, Iterations: 1})
	twice := runKernel(t, core.Config{Kernel: "invert", Dim: 64, TileW: 16, TileH: 16, Iterations: 2})
	fresh := img2d.New(64)
	testPattern(fresh)
	if !twice.Final.Equal(fresh) {
		t.Error("double inversion is not the identity")
	}
	if once.Final.Equal(fresh) {
		t.Error("single inversion left the image unchanged")
	}
}

func TestTransposeVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "transpose", 64, 16, 3, []string{"tiled", "omp_tiled"}, testSchedules)
}

func TestTransposeIsInvolution(t *testing.T) {
	twice := runKernel(t, core.Config{Kernel: "transpose", Dim: 64, TileW: 16, TileH: 16, Iterations: 2})
	fresh := img2d.New(64)
	testPattern(fresh)
	if !twice.Final.Equal(fresh) {
		t.Error("double transposition is not the identity")
	}
}

func TestTransposeMovesPixels(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "transpose", Dim: 64, TileW: 16, TileH: 16, Iterations: 1})
	fresh := img2d.New(64)
	testPattern(fresh)
	for _, pt := range [][2]int{{3, 40}, {10, 20}, {63, 0}} {
		y, x := pt[0], pt[1]
		if out.Final.Get(x, y) != fresh.Get(y, x) {
			t.Errorf("transposed(%d,%d) != original(%d,%d)", x, y, y, x)
		}
	}
}

func TestPixelizeVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "pixelize", 64, 16, 1, []string{"omp_tiled"}, testSchedules)
}

func TestPixelizeUniformTiles(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "pixelize", Dim: 64, TileW: 16, TileH: 16, Iterations: 1})
	// Every 16x16 tile must be a single flat color.
	for ty := 0; ty < 4; ty++ {
		for tx := 0; tx < 4; tx++ {
			ref := out.Final.Get(ty*16, tx*16)
			for y := ty * 16; y < (ty+1)*16; y++ {
				for x := tx * 16; x < (tx+1)*16; x++ {
					if out.Final.Get(y, x) != ref {
						t.Fatalf("tile (%d,%d) not uniform at (%d,%d)", tx, ty, x, y)
					}
				}
			}
		}
	}
}

func TestSpinVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "spin", 64, 16, 2, []string{"omp"}, testSchedules[:2])
}

func TestMandelVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "mandel", 64, 8, 2,
		[]string{"omp", "omp_tiled", "team", "task"}, testSchedules)
}

func TestMandelZoomChangesImage(t *testing.T) {
	one := runKernel(t, core.Config{Kernel: "mandel", Dim: 64, TileW: 8, TileH: 8, Iterations: 1})
	three := runKernel(t, core.Config{Kernel: "mandel", Dim: 64, TileW: 8, TileH: 8, Iterations: 3})
	if one.Final.Equal(three.Final) {
		t.Error("zoom did not change the image across iterations")
	}
}

func TestMandelHasInAndOutPixels(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "mandel", Dim: 64, TileW: 8, TileH: 8, Iterations: 1})
	blacks, colors := 0, 0
	for _, p := range out.Final.Pixels() {
		if p == img2d.Black {
			blacks++
		} else {
			colors++
		}
	}
	if blacks == 0 || colors == 0 {
		t.Errorf("degenerate view: %d in-set, %d escaped", blacks, colors)
	}
}

func TestBlurVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "blur", 64, 16, 3,
		[]string{"omp_tiled", "omp_tiled_opt"}, testSchedules)
}

func TestBlurSmooths(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "blur", Dim: 64, TileW: 16, TileH: 16, Iterations: 5})
	fresh := img2d.New(64)
	testPattern(fresh)
	// Blurring reduces total variation between horizontal neighbours.
	variation := func(im *img2d.Image) (v int64) {
		for y := 0; y < 64; y++ {
			row := im.Row(y)
			for x := 1; x < 64; x++ {
				d := int64(img2d.Brightness(row[x])) - int64(img2d.Brightness(row[x-1]))
				if d < 0 {
					d = -d
				}
				v += d
			}
		}
		return
	}
	if variation(out.Final) >= variation(fresh) {
		t.Error("blur did not reduce image variation")
	}
}

func TestLifeVariantsMatchSeq(t *testing.T) {
	for _, pattern := range []string{"random", "diag"} {
		ref := runKernel(t, core.Config{Kernel: "life", Variant: "seq", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 8, Arg: pattern, Seed: 3})
		for _, v := range []string{"omp_tiled", "lazy"} {
			out := runKernel(t, core.Config{Kernel: "life", Variant: v, Dim: 64,
				TileW: 8, TileH: 8, Iterations: 8, Threads: 4, Arg: pattern, Seed: 3,
				Schedule: sched.DynamicPolicy(1)})
			if n := ref.Final.DiffCount(out.Final); n != 0 {
				t.Errorf("life/%s pattern=%s: %d cells differ from seq", v, pattern, n)
			}
		}
	}
}

func TestLifeMPIMatchesSeq(t *testing.T) {
	for _, np := range []int{2, 4} {
		ref := runKernel(t, core.Config{Kernel: "life", Variant: "seq", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 10, Arg: "diag"})
		out := runKernel(t, core.Config{Kernel: "life", Variant: "mpi_omp", Dim: 64,
			TileW: 8, TileH: 8, Iterations: 10, Threads: 2, MPIRanks: np, Arg: "diag"})
		if n := ref.Final.DiffCount(out.Final); n != 0 {
			t.Errorf("life/mpi_omp np=%d: %d cells differ from seq", np, n)
		}
	}
}

// assertMPIMatchesSeq compares an mpi_omp run against the sequential
// reference: identical final image (byte for byte, via checksum and pixel
// diff) and identical iteration count. np=3 over a grid whose tile rows do
// not divide evenly exercises uneven band splits.
func assertMPIMatchesSeq(t *testing.T, kernel string, dim, tile, iters int, arg string, seed int64) {
	t.Helper()
	ref := runKernel(t, core.Config{Kernel: kernel, Variant: "seq", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iters, Arg: arg, Seed: seed})
	for _, np := range []int{2, 3, 4} {
		out := runKernel(t, core.Config{Kernel: kernel, Variant: "mpi_omp", Dim: dim,
			TileW: tile, TileH: tile, Iterations: iters, Threads: 2, MPIRanks: np,
			Arg: arg, Seed: seed})
		if n := ref.Final.DiffCount(out.Final); n != 0 {
			t.Errorf("%s/mpi_omp np=%d: %d pixels differ from seq", kernel, np, n)
		}
		if ref.Result.Checksum != out.Result.Checksum {
			t.Errorf("%s/mpi_omp np=%d: checksum %s != seq %s",
				kernel, np, out.Result.Checksum, ref.Result.Checksum)
		}
		if ref.Iterations != out.Iterations {
			t.Errorf("%s/mpi_omp np=%d: %d iterations, seq did %d",
				kernel, np, out.Iterations, ref.Iterations)
		}
	}
}

func TestFireMPIMatchesSeq(t *testing.T) {
	for _, arg := range []string{"forest", "sparse", "full"} {
		assertMPIMatchesSeq(t, "fire", 64, 8, 40, arg, 3)
	}
	assertMPIMatchesSeq(t, "fire", 64, 8, 40, "forest", 9)
}

func TestSandpileMPIMatchesSeq(t *testing.T) {
	assertMPIMatchesSeq(t, "sandpile", 64, 8, 60, "", 0)
}

func TestLifeMPIMatchesSeqUnevenBands(t *testing.T) {
	// 64/8 = 8 tile rows over 3 ranks: bands of 3/3/2 tile rows.
	for _, arg := range []string{"diag", "random"} {
		assertMPIMatchesSeq(t, "life", 64, 8, 20, arg, 5)
	}
}

func TestLifeBlinkerOscillates(t *testing.T) {
	one := runKernel(t, core.Config{Kernel: "life", Dim: 32, TileW: 8, TileH: 8,
		Iterations: 1, Arg: "blinker"})
	two := runKernel(t, core.Config{Kernel: "life", Dim: 32, TileW: 8, TileH: 8,
		Iterations: 2, Arg: "blinker"})
	fresh := runKernel(t, core.Config{Kernel: "life", Dim: 32, TileW: 8, TileH: 8,
		Iterations: 0, Arg: "blinker"})
	_ = fresh
	if one.Final.Equal(two.Final) {
		t.Error("blinker did not oscillate")
	}
	four := runKernel(t, core.Config{Kernel: "life", Dim: 32, TileW: 8, TileH: 8,
		Iterations: 4, Arg: "blinker"})
	if !two.Final.Equal(four.Final) {
		t.Error("blinker period-2 violated")
	}
}

func TestLifeEmptyConvergesImmediately(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "life", Variant: "lazy", Dim: 32,
		TileW: 8, TileH: 8, Iterations: 50, Arg: "empty", Threads: 2})
	if out.Iterations >= 50 {
		t.Errorf("empty board ran %d iterations, expected early convergence", out.Iterations)
	}
}

func TestLifeGliderMoves(t *testing.T) {
	// A glider translates by (1,1) every 4 generations.
	out4 := runKernel(t, core.Config{Kernel: "life", Dim: 64, TileW: 8, TileH: 8,
		Iterations: 4, Arg: "diag"})
	out0 := runKernel(t, core.Config{Kernel: "life", Dim: 64, TileW: 8, TileH: 8,
		Iterations: 0, Arg: "diag"})
	if out0.Final.Equal(out4.Final) {
		t.Error("gliders did not move")
	}
	alive := func(im *img2d.Image) int {
		n := 0
		for _, p := range im.Pixels() {
			if p == img2d.Yellow {
				n++
			}
		}
		return n
	}
	// Glider population is preserved (5 cells each) while none collide.
	if alive(out0.Final) != alive(out4.Final) {
		t.Errorf("population changed: %d -> %d", alive(out0.Final), alive(out4.Final))
	}
}

func TestLifeUnknownPattern(t *testing.T) {
	_, err := core.Run(core.Config{Kernel: "life", Dim: 32, TileW: 8, TileH: 8,
		Iterations: 1, Arg: "nonsense", NoDisplay: true})
	if err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestSandpileVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "sandpile", 64, 16, 20, []string{"omp_tiled"}, testSchedules)
}

func TestSandpileStabilizes(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "sandpile", Dim: 16, TileW: 8, TileH: 8,
		Iterations: 100000})
	if out.Iterations >= 100000 {
		t.Fatalf("sandpile did not stabilize in %d iterations", out.Iterations)
	}
	// A stable sandpile has every cell below 4 grains.
	// Re-run to inspect grains directly.
	cfg, err := core.Config{Kernel: "sandpile", Dim: 16, TileW: 8, TileH: 8,
		Iterations: out.Iterations + 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	for _, p := range out.Final.Pixels() {
		if p == img2d.Red { // red marks cells with >= 4 grains
			t.Fatal("stable sandpile still has unstable cells")
		}
	}
}

func TestCCVariantsMatchSeq(t *testing.T) {
	assertVariantsMatchSeq(t, "cc", 64, 16, 6,
		[]string{"task", "task_overconstrained"}, testSchedules[:1])
}

func TestCCConvergesToComponents(t *testing.T) {
	out := runKernel(t, core.Config{Kernel: "cc", Dim: 64, TileW: 16, TileH: 16,
		Iterations: 1000, Seed: 5})
	if out.Iterations >= 1000 {
		t.Fatal("cc did not converge")
	}
	n := CCLabelCount(out.Final)
	if n < 1 || n > 40 {
		t.Errorf("component count = %d, implausible", n)
	}
	// Converged labeling must be a fixed point: one more iteration changes
	// nothing.
	again := runKernel(t, core.Config{Kernel: "cc", Dim: 64, TileW: 16, TileH: 16,
		Iterations: out.Iterations + 5, Seed: 5})
	if !out.Final.Equal(again.Final) {
		t.Error("converged cc labeling is not a fixed point")
	}
}

func TestCCLabelsAreConnected(t *testing.T) {
	// Flood-fill verification: every label region must be connected, and
	// the label count must equal the flood-fill component count.
	out := runKernel(t, core.Config{Kernel: "cc", Dim: 64, TileW: 16, TileH: 16,
		Iterations: 1000, Seed: 9})
	im := out.Final
	dim := im.Dim()
	seen := make([]bool, dim*dim)
	components := 0
	var stack [][2]int
	for sy := 0; sy < dim; sy++ {
		for sx := 0; sx < dim; sx++ {
			if !ccOpaque(im.Get(sy, sx)) || seen[sy*dim+sx] {
				continue
			}
			components++
			label := im.Get(sy, sx)
			stack = stack[:0]
			stack = append(stack, [2]int{sy, sx})
			seen[sy*dim+sx] = true
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				y, x := p[0], p[1]
				if im.Get(y, x) != label {
					t.Fatalf("component at (%d,%d) has mixed labels", x, y)
				}
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ny, nx := y+d[0], x+d[1]
					if ny < 0 || ny >= dim || nx < 0 || nx >= dim {
						continue
					}
					if ccOpaque(im.Get(ny, nx)) && !seen[ny*dim+nx] {
						seen[ny*dim+nx] = true
						stack = append(stack, [2]int{ny, nx})
					}
				}
			}
		}
	}
	if got := CCLabelCount(im); got != components {
		t.Errorf("label count %d != flood-fill components %d", got, components)
	}
}

func TestLazyLifeSkipsSteadyTiles(t *testing.T) {
	// With the sparse diag pattern, the lazy variant must compute far fewer
	// tiles than the full grid — the §III-D check via the tiling window.
	out, err := core.Run(core.Config{Kernel: "life", Variant: "lazy", Dim: 128,
		TileW: 8, TileH: 8, Iterations: 3, Threads: 2, Arg: "diag",
		NoDisplay: true, Monitoring: true})
	if err != nil {
		t.Fatal(err)
	}
	iters := out.Monitors[0].Iterations()
	last := iters[len(iters)-1]
	totalTiles := (128 / 8) * (128 / 8)
	if len(last.Tiles) >= totalTiles/2 {
		t.Errorf("lazy life computed %d of %d tiles; expected a sparse fraction",
			len(last.Tiles), totalTiles)
	}
	if len(last.Tiles) == 0 {
		t.Error("lazy life computed nothing despite moving gliders")
	}
}
