package kernels

// The asynchronous Abelian sandpile (EASYPAP's "asandPile"): unlike the
// synchronous variant, cells topple in place — a cell with 4 or more
// grains immediately sends one grain to each 4-neighbour. The Abelian
// property guarantees that the *stable* configuration is independent of
// the topple order, which makes the kernel a perfect stress test for
// parallel variants: sequential sweeps, tiled parallel execution with
// atomic cross-tile grain transfers, and even the synchronous sandpile all
// converge to the same board. The property tests exploit exactly this.

import (
	"sync/atomic"

	"easypap/internal/core"
	"easypap/internal/img2d"
	"easypap/internal/tilegrid"
)

func init() {
	core.Register(&core.Kernel{
		Name:        "asandpile",
		Description: "asynchronous (in-place) Abelian sandpile",
		Init:        asandInit,
		Refresh:     asandRefresh,
		Variants: map[string]core.ComputeFunc{
			"seq":       asandSeq,
			"omp_tiled": asandOmpTiled,
			"lazy_omp":  asandLazyOmp,
		},
		DefaultVariant: "seq",
		Codec:          asandCodec{},
	})
}

// asandState is the grain grid. Parallel variants mutate cells with
// atomics; the absorbing one-cell border stays at zero. The frontier
// tracks which tiles may still topple (lazy variant + convergence).
type asandState struct {
	dim   int
	cells []uint32
	tileW int
	tileH int
	fr    *tilegrid.Frontier
}

func asandInit(ctx *core.Ctx) error {
	dim := ctx.Dim()
	st := &asandState{dim: dim, cells: make([]uint32, dim*dim),
		tileW: ctx.Cfg.TileW, tileH: ctx.Cfg.TileH, fr: tilegrid.New(ctx.Grid)}
	st.fr.Advance() // first iteration sweeps every tile
	for y := 1; y < dim-1; y++ {
		for x := 1; x < dim-1; x++ {
			st.cells[y*dim+x] = 5
		}
	}
	ctx.SetPriv(st)
	asandRefresh(ctx)
	return nil
}

func asandStateOf(ctx *core.Ctx) *asandState { return ctx.Priv().(*asandState) }

func asandRefresh(ctx *core.Ctx) {
	st := asandStateOf(ctx)
	im := ctx.Cur()
	palette := [4]img2d.Pixel{
		img2d.Black,
		img2d.RGB(60, 60, 160),
		img2d.RGB(80, 160, 220),
		img2d.RGB(240, 240, 170),
	}
	for y := 0; y < st.dim; y++ {
		row := im.Row(y)
		for x := 0; x < st.dim; x++ {
			g := atomic.LoadUint32(&st.cells[y*st.dim+x])
			if g < 4 {
				row[x] = palette[g]
			} else {
				row[x] = img2d.Red
			}
		}
	}
}

// asandSeqTile topples every unstable cell of the tile once, in place,
// without atomics (sequential use only). Returns whether it toppled
// anything.
func (s *asandState) asandSeqTile(x, y, w, h int) bool {
	active := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			if yy == 0 || yy == s.dim-1 || xx == 0 || xx == s.dim-1 {
				continue
			}
			idx := yy*s.dim + xx
			v := s.cells[idx]
			if v < 4 {
				continue
			}
			spill := v / 4
			s.cells[idx] = v % 4
			s.cells[idx-1] += spill
			s.cells[idx+1] += spill
			s.cells[idx-s.dim] += spill
			s.cells[idx+s.dim] += spill
			active = true
		}
	}
	return active
}

// asandAtomicTile is the parallel-safe tile topple: grains move with
// atomic operations so concurrent tiles may exchange grains across their
// shared borders without losing any (grain conservation is what the
// property tests check).
func (s *asandState) asandAtomicTile(x, y, w, h int) bool {
	active := false
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			if yy == 0 || yy == s.dim-1 || xx == 0 || xx == s.dim-1 {
				continue
			}
			idx := yy*s.dim + xx
			for {
				v := atomic.LoadUint32(&s.cells[idx])
				if v < 4 {
					break
				}
				spill := v / 4
				if !atomic.CompareAndSwapUint32(&s.cells[idx], v, v%4) {
					continue // a neighbour pushed grains in; retry
				}
				atomic.AddUint32(&s.cells[idx-1], spill)
				atomic.AddUint32(&s.cells[idx+1], spill)
				atomic.AddUint32(&s.cells[idx-s.dim], spill)
				atomic.AddUint32(&s.cells[idx+s.dim], spill)
				active = true
				break
			}
		}
	}
	return active
}

func asandSeq(ctx *core.Ctx, nbIter int) int {
	st := asandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		return st.asandSeqTile(0, 0, st.dim, st.dim)
	})
}

// asandOmpTiled topples tiles in parallel. In-place asynchronous toppling
// tolerates any interleaving thanks to the Abelian property; atomics keep
// grain counts exact across tile borders.
func asandOmpTiled(ctx *core.Ctx, nbIter int) int {
	st := asandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		var activeFlag atomic.Bool
		ctx.Pool.ParallelForTiles(ctx.Grid, ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.asandAtomicTile(x, y, w, h) {
				activeFlag.Store(true)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		return activeFlag.Load()
	})
}

// asandLazyOmp sweeps only the frontier: a tile that toppled re-enters it
// together with its 8 neighbours (a topple on a tile edge pushes grains
// across the border, so the neighbour may have become unstable). A tile
// that toppled nothing is steady until a neighbour's topple re-marks it —
// grains only ever arrive through topples, so every unstable tile is
// always in the frontier. The stable board is byte-identical to every
// other variant by the Abelian property.
func asandLazyOmp(ctx *core.Ctx, nbIter int) int {
	st := asandStateOf(ctx)
	return ctx.ForIterations(nbIter, func(int) bool {
		ctx.ReportActivity(st.fr.Count(), st.fr.Total(), st.fr.Active())
		ctx.Pool.ParallelForActive(ctx.Grid, st.fr.Active(), ctx.Cfg.Schedule, func(x, y, w, h, worker int) {
			ctx.StartTile(worker)
			if st.asandAtomicTile(x, y, w, h) {
				st.fr.MarkChanged(x/st.tileW, y/st.tileH)
			}
			ctx.EndTile(x, y, w, h, worker)
		})
		return st.fr.Advance() > 0
	})
}

// ASandGrainsSnapshot exposes a copy of the grain grid for tests.
func ASandGrainsSnapshot(ctx *core.Ctx) []uint32 {
	st := asandStateOf(ctx)
	out := make([]uint32, len(st.cells))
	for i := range st.cells {
		out[i] = atomic.LoadUint32(&st.cells[i])
	}
	return out
}
