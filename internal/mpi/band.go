package mpi

// Row-band decomposition and ghost-cell exchange helpers: the communication
// pattern the paper's MPI Game of Life uses (§III-D). The image is split
// into horizontal bands, one per rank; stencil kernels need each
// neighbour's boundary row (the "ghost cells"), exchanged every iteration
// together with tile meta-information (which tiles are in a steady state).

import "fmt"

// Band is one rank's horizontal slab of a dim x dim image: rows
// [Lo, Hi).
type Band struct {
	Rank int
	Lo   int // first owned row (inclusive)
	Hi   int // last owned row (exclusive)
	Dim  int
}

// Rows returns the number of owned rows.
func (b Band) Rows() int { return b.Hi - b.Lo }

// BandFor computes rank's band of a dim-row image split across size ranks
// as evenly as possible (lower ranks take the extra rows).
func BandFor(dim, size, rank int) Band {
	base := dim / size
	rem := dim % size
	lo := 0
	if rank < rem {
		lo = rank * (base + 1)
		return Band{Rank: rank, Lo: lo, Hi: lo + base + 1, Dim: dim}
	}
	lo = rem*(base+1) + (rank-rem)*base
	return Band{Rank: rank, Lo: lo, Hi: lo + base, Dim: dim}
}

// BandForTiles computes rank's band aligned to tile rows: the dim/tileH
// tile rows are distributed as evenly as possible (lower ranks take the
// extras), so every band boundary falls on a tile boundary and the tile
// frontier's Restrict covers each band exactly. Uneven splits — tile-row
// counts not divisible by size — are first-class: rank 0 of a 3-way
// 1024/32 split owns 11 tile rows, the others 11 and 10. Falls back to
// BandFor when tileH does not divide dim (normalized configs always do).
func BandForTiles(dim, tileH, size, rank int) Band {
	if tileH <= 0 || dim%tileH != 0 {
		return BandFor(dim, size, rank)
	}
	tb := BandFor(dim/tileH, size, rank)
	return Band{Rank: rank, Lo: tb.Lo * tileH, Hi: tb.Hi * tileH, Dim: dim}
}

// Ghost-row exchange tags (reserved range distinct from collectives).
const (
	tagGhostDown = -200 // sending my bottom row to the rank below
	tagGhostUp   = -201 // sending my top row to the rank above
)

// CloneRow copies a pixel row so the sender may keep mutating its buffer
// (messages transfer ownership).
func CloneRow(row []uint32) []uint32 {
	cp := make([]uint32, len(row))
	copy(cp, row)
	return cp
}

// ExchangeGhostRows swaps boundary rows with the neighbouring ranks:
// top and bottom are the caller's first and last owned rows (they are
// copied before sending); the returned ghostAbove/ghostBelow are the
// neighbours' adjacent rows, or nil at the world's edges.
func (c *Comm) ExchangeGhostRows(band Band, top, bottom []uint32) (ghostAbove, ghostBelow []uint32, err error) {
	up, down := band.Rank-1, band.Rank+1
	if up >= 0 {
		if err := c.Send(up, tagGhostUp, CloneRow(top)); err != nil {
			return nil, nil, err
		}
	}
	if down < c.Size() {
		if err := c.Send(down, tagGhostDown, CloneRow(bottom)); err != nil {
			return nil, nil, err
		}
	}
	if up >= 0 {
		got, _, err := c.Recv(up, tagGhostDown)
		if err != nil {
			return nil, nil, fmt.Errorf("mpi: ghost row from rank %d: %w", up, err)
		}
		ghostAbove = got.([]uint32)
	}
	if down < c.Size() {
		got, _, err := c.Recv(down, tagGhostUp)
		if err != nil {
			return nil, nil, fmt.Errorf("mpi: ghost row from rank %d: %w", down, err)
		}
		ghostBelow = got.([]uint32)
	}
	return ghostAbove, ghostBelow, nil
}

// ExchangeGhostMeta performs the same neighbour exchange for arbitrary
// per-boundary metadata (e.g. the per-tile steadiness bitmaps of the lazy
// Game of Life). The payloads are sent as-is: callers must not mutate them
// afterwards.
func (c *Comm) ExchangeGhostMeta(band Band, topMeta, bottomMeta any) (metaAbove, metaBelow any, err error) {
	const (
		tagMetaDown = -210
		tagMetaUp   = -211
	)
	up, down := band.Rank-1, band.Rank+1
	if up >= 0 {
		if err := c.Send(up, tagMetaUp, topMeta); err != nil {
			return nil, nil, err
		}
	}
	if down < c.Size() {
		if err := c.Send(down, tagMetaDown, bottomMeta); err != nil {
			return nil, nil, err
		}
	}
	if up >= 0 {
		got, _, err := c.Recv(up, tagMetaDown)
		if err != nil {
			return nil, nil, err
		}
		metaAbove = got
	}
	if down < c.Size() {
		got, _, err := c.Recv(down, tagMetaUp)
		if err != nil {
			return nil, nil, err
		}
		metaBelow = got
	}
	return metaAbove, metaBelow, nil
}

// GatherBands reassembles a full image at root from per-rank bands: each
// rank sends its rows (dim*rows pixels, row-major); root returns the
// dim*dim pixel slice, others nil. This is how the master process refreshes
// the displayed window in EASYPAP's MPI mode.
//
// Each payload is self-describing — the sender's Lo/Hi rows lead the
// pixels — so root reassembles whatever band decomposition the ranks
// actually used (BandFor, BandForTiles, anything covering the image)
// instead of assuming one.
func (c *Comm) GatherBands(root int, band Band, pixels []uint32) ([]uint32, error) {
	if len(pixels) != band.Rows()*band.Dim {
		return nil, fmt.Errorf("mpi: rank %d: band payload has %d pixels, want %d",
			c.rank, len(pixels), band.Rows()*band.Dim)
	}
	payload := make([]uint32, 0, 2+len(pixels))
	payload = append(payload, uint32(band.Lo), uint32(band.Hi))
	payload = append(payload, pixels...)
	parts, err := c.Gather(root, payload)
	if err != nil || c.rank != root {
		return nil, err
	}
	full := make([]uint32, band.Dim*band.Dim)
	for r := 0; r < c.Size(); r++ {
		part, ok := parts[r].([]uint32)
		if !ok || len(part) < 2 {
			return nil, fmt.Errorf("mpi: rank %d sent a malformed band", r)
		}
		lo, hi := int(part[0]), int(part[1])
		if lo < 0 || hi < lo || hi > band.Dim || len(part)-2 != (hi-lo)*band.Dim {
			return nil, fmt.Errorf("mpi: rank %d sent a malformed band", r)
		}
		copy(full[lo*band.Dim:hi*band.Dim], part[2:])
	}
	return full, nil
}
