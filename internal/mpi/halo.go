package mpi

// Frontier-aware halo exchange: the per-iteration boundary protocol shared
// by the in-process mpi_omp kernels and the cluster's distributed shards
// (internal/serve). It fuses the three communication steps the original
// life MPI variant performed — ghost-row exchange, frontier-flag
// forwarding, convergence vote — into one protocol with a skip rule:
//
//   - After computing an iteration (and before Frontier.Advance), a rank
//     inspects its halo tile rows (tyLo-1 / tyHi). Marks there exist if
//     and only if a tile in the adjacent owned boundary row was marked,
//     which is the only way the boundary pixel row can have changed. No
//     marks ⇒ the neighbour's cached ghost row is still exact ⇒ the edge
//     is skipped entirely: no row bytes, no flags, no message.
//   - Whether an edge is active is the *sender's* knowledge, so ranks
//     agree through the convergence vote they must take anyway: everyone
//     reports (marked, sendUp, sendDown) to rank 0, which answers with
//     (continue, recvUp, recvDown). One gather-style round replaces the
//     old Allreduce and makes every skip decision symmetric.
//   - Active edges carry one combined packet: the boundary row in a
//     kernel-chosen encoding (binary-state kernels bit-pack, 8 cells per
//     byte) plus the bit-packed frontier flags for the neighbour's
//     boundary tile row.
//
// Convergence is unchanged: a rank's post-merge frontier is non-empty iff
// it marked a tile itself or a neighbour that marked one forwarded flags,
// so OR(marked) over ranks equals the old OR(post-merge frontier size>0).
// Sparse workloads therefore pay zero boundary communication in quiet
// regions — on a distributed world, quiet edges cost no HTTP requests at
// all — while producing byte-identical boards and iteration counts.

import (
	"fmt"
	"time"

	"easypap/internal/tilegrid"
)

// Halo exchange tags (reserved negative range, distinct from collectives
// and the legacy ghost/meta tags).
const (
	tagHaloUp   = -222 // packet travelling to the rank above (my top row)
	tagHaloDown = -223 // packet travelling to the rank below (my bottom row)
	tagHaloVote = -224 // (marked, sendUp, sendDown) to rank 0
	tagHaloPlan = -225 // (continue, recvUp, recvDown) from rank 0
)

// HaloPacket is one edge's combined payload: the sender's boundary pixel
// row (kernel-encoded — bit-packed for binary-state kernels) and the
// frontier flags of the receiver's adjacent boundary tile row.
type HaloPacket struct {
	Row   []byte
	Flags []bool
}

// Halo drives the frontier-aware boundary exchange for one rank. The
// kernel supplies the cell encoding; the engine owns the protocol, the
// skip rule, and the counters.
type Halo struct {
	C     *Comm
	Band  Band
	Fr    *tilegrid.Frontier
	TileH int

	// EncodeRow returns the wire bytes of absolute pixel row y of the
	// kernel's current (post-swap) buffer. The result must be a fresh
	// slice: messages transfer ownership.
	EncodeRow func(y int) []byte
	// SetGhost installs a neighbour's boundary row into the kernel's
	// ghost buffer; side < 0 is the row above the band, side > 0 below.
	SetGhost func(side int, row []byte)
	// OnStep, when non-nil, observes each exchange: message/skip/byte
	// deltas and the wall time spent in the protocol (including the
	// vote). This is how serving shards feed their per-node halo
	// counters and stage histograms.
	OnStep func(sent, skipped, bytes int64, d time.Duration)

	// Cumulative counters for this rank's run.
	Sent, Skipped, Bytes int64
}

// report accumulates one exchange's deltas and fires the observer.
func (h *Halo) report(sent, skipped, bytes int64, start time.Time) {
	h.Sent += sent
	h.Skipped += skipped
	h.Bytes += bytes
	if h.OnStep != nil {
		h.OnStep(sent, skipped, bytes, time.Since(start))
	}
}

// Prime performs the unconditional initial exchange: every existing edge
// carries its boundary row once so iteration 1 computes against real
// ghost values. Flags are not needed — the restricted frontier starts
// all-active.
func (h *Halo) Prime() error {
	start := time.Now()
	rank, size := h.C.Rank(), h.C.Size()
	up, down := rank-1, rank+1
	var sent, bytes int64
	if up >= 0 {
		pkt := HaloPacket{Row: h.EncodeRow(h.Band.Lo)}
		if err := h.C.Send(up, tagHaloUp, pkt); err != nil {
			return fmt.Errorf("mpi: halo prime: %w", err)
		}
		sent++
		bytes += int64(len(pkt.Row))
	}
	if down < size {
		pkt := HaloPacket{Row: h.EncodeRow(h.Band.Hi - 1)}
		if err := h.C.Send(down, tagHaloDown, pkt); err != nil {
			return fmt.Errorf("mpi: halo prime: %w", err)
		}
		sent++
		bytes += int64(len(pkt.Row))
	}
	if up >= 0 {
		if err := h.recvPacket(up, tagHaloDown, -1, -1); err != nil {
			return err
		}
	}
	if down < size {
		if err := h.recvPacket(down, tagHaloUp, +1, -1); err != nil {
			return err
		}
	}
	h.report(sent, 0, bytes, start)
	return nil
}

// Step runs the post-compute exchange for one iteration: call it after
// the kernel marked its changes and swapped buffers, before
// Frontier.Advance (Step advances the frontier itself after merging).
// marked reports whether this rank marked any tile this iteration. The
// returned bool is the global convergence vote: true means some rank is
// still active and iteration continues.
func (h *Halo) Step(marked bool) (bool, error) {
	start := time.Now()
	rank, size := h.C.Rank(), h.C.Size()
	up, down := rank-1, rank+1
	tyLo, tyHi := h.Band.Lo/h.TileH, h.Band.Hi/h.TileH

	upFlags := h.Fr.RowFlags(tyLo - 1) // nil at the world's top edge
	downFlags := h.Fr.RowFlags(tyHi)   // nil at the bottom edge
	sendUp := up >= 0 && anyFlag(upFlags)
	sendDown := down < size && anyFlag(downFlags)

	// Ship active edges immediately — sends never block on the receiver —
	// so packets overlap the vote round-trip.
	var sent, skipped, bytes int64
	if sendUp {
		pkt := HaloPacket{Row: h.EncodeRow(h.Band.Lo), Flags: upFlags}
		if err := h.C.Send(up, tagHaloUp, pkt); err != nil {
			return false, fmt.Errorf("mpi: halo send: %w", err)
		}
		sent++
		bytes += int64(len(pkt.Row) + (len(pkt.Flags)+7)/8)
	} else if up >= 0 {
		skipped++
	}
	if sendDown {
		pkt := HaloPacket{Row: h.EncodeRow(h.Band.Hi - 1), Flags: downFlags}
		if err := h.C.Send(down, tagHaloDown, pkt); err != nil {
			return false, fmt.Errorf("mpi: halo send: %w", err)
		}
		sent++
		bytes += int64(len(pkt.Row) + (len(pkt.Flags)+7)/8)
	} else if down < size {
		skipped++
	}

	cont, recvUp, recvDown, err := h.vote(marked, sendUp, sendDown)
	if err != nil {
		return false, err
	}
	if recvUp {
		if err := h.recvPacket(up, tagHaloDown, -1, tyLo); err != nil {
			return false, err
		}
	}
	if recvDown {
		if err := h.recvPacket(down, tagHaloUp, +1, tyHi-1); err != nil {
			return false, err
		}
	}
	h.Fr.Advance()
	h.report(sent, skipped, bytes, start)
	return cont, nil
}

// vote runs the combined convergence/edge-agreement round through rank 0:
// gather (marked, sendUp, sendDown), answer (continue, recvUp, recvDown).
// recvUp of rank r is sendDown of rank r-1, so both ends of every edge
// agree on whether a packet is in flight.
func (h *Halo) vote(marked, sendUp, sendDown bool) (cont, recvUp, recvDown bool, err error) {
	rank, size := h.C.Rank(), h.C.Size()
	if rank != 0 {
		if err := h.C.Send(0, tagHaloVote, []bool{marked, sendUp, sendDown}); err != nil {
			return false, false, false, fmt.Errorf("mpi: halo vote: %w", err)
		}
		got, _, err := h.C.Recv(0, tagHaloPlan)
		if err != nil {
			return false, false, false, fmt.Errorf("mpi: halo plan: %w", err)
		}
		plan, ok := got.([]bool)
		if !ok || len(plan) != 3 {
			return false, false, false, fmt.Errorf("mpi: malformed halo plan %T", got)
		}
		return plan[0], plan[1], plan[2], nil
	}

	ups := make([]bool, size)   // rank r sends to r-1
	downs := make([]bool, size) // rank r sends to r+1
	ups[0], downs[0] = sendUp, sendDown
	cont = marked
	for i := 1; i < size; i++ {
		got, from, err := h.C.Recv(AnySource, tagHaloVote)
		if err != nil {
			return false, false, false, fmt.Errorf("mpi: halo vote: %w", err)
		}
		v, ok := got.([]bool)
		if !ok || len(v) != 3 {
			return false, false, false, fmt.Errorf("mpi: malformed halo vote %T", got)
		}
		cont = cont || v[0]
		ups[from], downs[from] = v[1], v[2]
	}
	for r := 1; r < size; r++ {
		rUp := downs[r-1] // my upper neighbour sends its bottom row down to me
		rDown := r+1 < size && ups[r+1]
		if err := h.C.Send(r, tagHaloPlan, []bool{cont, rUp, rDown}); err != nil {
			return false, false, false, fmt.Errorf("mpi: halo plan: %w", err)
		}
	}
	return cont, false, size > 1 && ups[1], nil
}

// recvPacket receives one halo packet from src, installs the ghost row,
// and merges the forwarded frontier flags into tile row mergeTy (skipped
// when mergeTy < 0, e.g. during priming).
func (h *Halo) recvPacket(src, tag, side, mergeTy int) error {
	got, _, err := h.C.Recv(src, tag)
	if err != nil {
		return fmt.Errorf("mpi: halo from rank %d: %w", src, err)
	}
	pkt, ok := got.(HaloPacket)
	if !ok {
		return fmt.Errorf("mpi: rank %d sent %T where a halo packet was expected", src, got)
	}
	h.SetGhost(side, pkt.Row)
	if mergeTy >= 0 && pkt.Flags != nil {
		h.Fr.MergeRowFlags(mergeTy, pkt.Flags)
	}
	return nil
}

// anyFlag reports whether any flag is set.
func anyFlag(flags []bool) bool {
	for _, f := range flags {
		if f {
			return true
		}
	}
	return false
}

// PackRowBits bit-packs a row of binary cells (0 = dead, anything else =
// alive), 8 cells per byte LSB-first — the life_bitpack layout lifted to
// the wire, shrinking binary-state halo rows 8x.
func PackRowBits(cells []uint8) []byte {
	out := make([]byte, (len(cells)+7)/8)
	for i, c := range cells {
		if c != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// UnpackRowBits reverses PackRowBits into dst (len(dst) cells).
func UnpackRowBits(dst []uint8, packed []byte) {
	for i := range dst {
		if i/8 < len(packed) && packed[i/8]&(1<<(i%8)) != 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}
