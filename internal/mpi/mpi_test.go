package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestRunInvalidSize(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Error("Run(0) succeeded")
	}
	if err := Run(-2, func(*Comm) error { return nil }); err == nil {
		t.Error("Run(-2) succeeded")
	}
}

func TestRankAndSize(t *testing.T) {
	var seen [4]atomic.Int32
	err := Run(4, func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("size = %d", c.Size())
		}
		seen[c.Rank()].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if seen[r].Load() != 1 {
			t.Errorf("rank %d ran %d times", r, seen[r].Load())
		}
	}
}

func TestPingPong(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, "ping"); err != nil {
				return err
			}
			got, from, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if got.(string) != "pong" || from != 1 {
				return fmt.Errorf("got %v from %d", got, from)
			}
			return nil
		}
		got, _, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if got.(string) != "ping" {
			return fmt.Errorf("got %v", got)
		}
		return c.Send(0, 8, "pong")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				return fmt.Errorf("send to rank 5 succeeded")
			}
			if err := c.Send(-1, 0, nil); err == nil {
				return fmt.Errorf("send to rank -1 succeeded")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertaking(t *testing.T) {
	// Same sender, same tag: messages arrive in send order.
	err := Run(2, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if got.(int) != i {
				return fmt.Errorf("message %d arrived as %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	// A receiver waiting on tag B must not consume an earlier tag-A
	// message.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "first-tagA"); err != nil {
				return err
			}
			return c.Send(1, 2, "tagB")
		}
		got, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if got.(string) != "tagB" {
			return fmt.Errorf("tag 2 recv got %v", got)
		}
		got, _, err = c.Recv(0, 1)
		if err != nil {
			return err
		}
		if got.(string) != "first-tagA" {
			return fmt.Errorf("tag 1 recv got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				got, from, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				seen[from] = true
				if got.(int) != from*10 {
					return fmt.Errorf("payload %v from %d", got, from)
				}
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources seen: %v", seen)
			}
			return nil
		}
		return c.Send(0, c.Rank(), c.Rank()*10)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(0, 5, 42); err != nil {
			return err
		}
		got, from, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if got.(int) != 42 || from != 0 {
			return fmt.Errorf("self-send got %v from %d", got, from)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	start := time.Now()
	err := RunConfig(2, Config{RecvTimeout: 50 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			_, _, err := c.Recv(1, 9) // rank 1 never sends
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("deadlocked program returned no error")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("error %v does not wrap ErrDeadlock", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("watchdog took far longer than the configured timeout")
	}
}

func TestRankPanicIsReported(t *testing.T) {
	err := RunConfig(2, Config{RecvTimeout: 100 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Errorf("panic not reported: %v", err)
	}
}

func TestRankErrorWrapped(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("rank error not wrapped: %v", err)
	}
	if !contains(err.Error(), "rank 2") {
		t.Errorf("error does not name the rank: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestBarrierSynchronizes(t *testing.T) {
	const np, rounds = 5, 30
	var counter atomic.Int32
	var bad atomic.Int32
	err := Run(np, func(c *Comm) error {
		for r := 0; r < rounds; r++ {
			counter.Add(1)
			c.Barrier()
			if counter.Load() != int32((r+1)*np) {
				bad.Add(1)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Errorf("%d barrier violations", bad.Load())
	}
}

func TestBcast(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		var in any
		if c.Rank() == 2 {
			in = "hello from 2"
		}
		got, err := c.Bcast(2, in)
		if err != nil {
			return err
		}
		if got.(string) != "hello from 2" {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := c.Bcast(7, nil); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		vals, err := c.Gather(0, c.Rank()*c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if vals != nil {
				return fmt.Errorf("non-root got %v", vals)
			}
			return nil
		}
		for r, v := range vals {
			if v.(int) != r*r {
				return fmt.Errorf("vals[%d] = %v", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		sum, err := c.AllreduceInt(c.Rank() + 1)
		if err != nil {
			return err
		}
		if sum != 15 { // 1+2+3+4+5
			return fmt.Errorf("rank %d allreduce sum = %d", c.Rank(), sum)
		}
		anyTrue, err := c.AllreduceBool(c.Rank() == 3)
		if err != nil {
			return err
		}
		if !anyTrue {
			return fmt.Errorf("allreduce OR missed the true vote")
		}
		allFalse, err := c.AllreduceBool(false)
		if err != nil {
			return err
		}
		if allFalse {
			return fmt.Errorf("allreduce OR fabricated a true")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBandForPartition(t *testing.T) {
	f := func(dimRaw uint16, sizeRaw uint8) bool {
		dim := int(dimRaw%1000) + 1
		size := int(sizeRaw%8) + 1
		prev := 0
		for r := 0; r < size; r++ {
			b := BandFor(dim, size, r)
			if b.Lo != prev || b.Hi < b.Lo {
				return false
			}
			prev = b.Hi
		}
		return prev == dim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExchangeGhostRows(t *testing.T) {
	const dim, np = 16, 4
	err := Run(np, func(c *Comm) error {
		band := BandFor(dim, np, c.Rank())
		// Each rank's rows are filled with its rank id + row index.
		mkRow := func(row int) []uint32 {
			r := make([]uint32, dim)
			for i := range r {
				r[i] = uint32(c.Rank()*1000 + row)
			}
			return r
		}
		top, bottom := mkRow(band.Lo), mkRow(band.Hi-1)
		above, below, err := c.ExchangeGhostRows(band, top, bottom)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && above != nil {
			return fmt.Errorf("rank 0 received a ghost row from above")
		}
		if c.Rank() == np-1 && below != nil {
			return fmt.Errorf("last rank received a ghost row from below")
		}
		if c.Rank() > 0 {
			wantRow := BandFor(dim, np, c.Rank()-1).Hi - 1
			if above[0] != uint32((c.Rank()-1)*1000+wantRow) {
				return fmt.Errorf("rank %d ghost above = %d", c.Rank(), above[0])
			}
		}
		if c.Rank() < np-1 {
			wantRow := BandFor(dim, np, c.Rank()+1).Lo
			if below[0] != uint32((c.Rank()+1)*1000+wantRow) {
				return fmt.Errorf("rank %d ghost below = %d", c.Rank(), below[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeGhostMeta(t *testing.T) {
	const np = 3
	err := Run(np, func(c *Comm) error {
		band := BandFor(30, np, c.Rank())
		above, below, err := c.ExchangeGhostMeta(band,
			fmt.Sprintf("top-%d", c.Rank()), fmt.Sprintf("bot-%d", c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() > 0 {
			want := fmt.Sprintf("bot-%d", c.Rank()-1)
			if above.(string) != want {
				return fmt.Errorf("above = %v, want %s", above, want)
			}
		}
		if c.Rank() < np-1 {
			want := fmt.Sprintf("top-%d", c.Rank()+1)
			if below.(string) != want {
				return fmt.Errorf("below = %v, want %s", below, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBands(t *testing.T) {
	const dim, np = 12, 3
	err := Run(np, func(c *Comm) error {
		band := BandFor(dim, np, c.Rank())
		pixels := make([]uint32, band.Rows()*dim)
		for i := range pixels {
			pixels[i] = uint32(c.Rank() + 1)
		}
		full, err := c.GatherBands(0, band, pixels)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if full != nil {
				return fmt.Errorf("non-root got pixels")
			}
			return nil
		}
		for r := 0; r < np; r++ {
			rb := BandFor(dim, np, r)
			for row := rb.Lo; row < rb.Hi; row++ {
				if full[row*dim] != uint32(r+1) {
					return fmt.Errorf("row %d owned by %d, got %d", row, r+1, full[row*dim])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBandsValidatesSize(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		band := BandFor(8, 2, c.Rank())
		if c.Rank() == 0 {
			_, err := c.GatherBands(0, band, make([]uint32, 3)) // wrong size
			if err == nil {
				return fmt.Errorf("malformed band accepted")
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRandomTraffic stress-tests the mailbox under randomized all-to-all
// communication.
func TestRandomTraffic(t *testing.T) {
	const np, msgs = 6, 60
	err := Run(np, func(c *Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		// Everyone sends msgs messages to random peers with tag 1,
		// then receives exactly its incoming count via a gather of counts.
		sent := make([]int, np)
		for i := 0; i < msgs; i++ {
			dst := rng.Intn(np)
			if err := c.Send(dst, 1, c.Rank()); err != nil {
				return err
			}
			sent[dst]++
		}
		// Share the send matrix so each rank knows how many to expect.
		all, err := c.Gather(0, sent)
		if err != nil {
			return err
		}
		var expect any
		if c.Rank() == 0 {
			incoming := make([]int, np)
			for _, row := range all {
				for dst, n := range row.([]int) {
					incoming[dst] += n
				}
			}
			expect = incoming
		}
		got, err := c.Bcast(0, expect)
		if err != nil {
			return err
		}
		mine := got.([]int)[c.Rank()]
		for i := 0; i < mine; i++ {
			if _, _, err := c.Recv(AnySource, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloneRow(t *testing.T) {
	orig := []uint32{1, 2, 3}
	cp := CloneRow(orig)
	cp[0] = 99
	if orig[0] != 1 {
		t.Error("CloneRow did not copy")
	}
}

func BenchmarkPingPong(b *testing.B) {
	b.ReportAllocs()
	err := Run(2, func(c *Comm) error {
		other := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(other, 1, i); err != nil {
					return err
				}
				if _, _, err := c.Recv(other, 2); err != nil {
					return err
				}
			} else {
				if _, _, err := c.Recv(other, 1); err != nil {
					return err
				}
				if err := c.Send(other, 2, i); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
