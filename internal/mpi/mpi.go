// Package mpi is an in-process message-passing runtime with MPI-shaped
// semantics: ranks, tagged point-to-point messages, and the collectives
// EASYPAP assignments use (barrier, broadcast, gather, reduce). It is the
// substitution documented in DESIGN.md for the real MPI processes the paper
// launches through mpirun: each rank runs as a goroutine group with its own
// private data (kernels never share image memory across ranks), so the
// communication structure — ghost-cell rows, tile meta-information — is
// identical to the distributed original while remaining runnable in a unit
// test.
//
// Messages transfer ownership: after Send returns, the sender must not
// mutate the payload. Kernels that reuse buffers copy before sending (see
// CloneRow). Recv carries a deadline so an incorrectly synchronized student
// program reports a deadlock instead of hanging the process — the runtime's
// watchdog stands in for a hung mpirun.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultRecvTimeout bounds how long a Recv waits before declaring the
// program deadlocked.
const DefaultRecvTimeout = 10 * time.Second

// ErrDeadlock is wrapped by errors returned from receives that timed out.
var ErrDeadlock = errors.New("mpi: deadlock suspected (receive timed out)")

// ErrCanceled is wrapped by errors returned from ranks interrupted by the
// world's context (alongside the context's own error, so callers can test
// errors.Is(err, context.Canceled) as well).
var ErrCanceled = errors.New("mpi: world canceled")

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// AnySource matches any sender rank in Recv.
const AnySource = -1

// message is one in-flight message.
type message struct {
	src, tag int
	payload  any
}

// world is the shared state of a communicator group.
type world struct {
	size    int
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]message // per-destination mailbox
	timeout time.Duration
	ctx     context.Context // cancels blocked receives and barriers

	// barrier state (central counter, phase-flipped)
	barWaiting int
	barPhase   uint64

	// net is non-nil for distributed worlds (net.go): only rank net.local
	// is in-process, sends to other ranks go through net.send, and
	// failures (transport errors, receive timeouts) are reported through
	// net.fail, which aborts the whole session.
	net *netHooks
}

// netHooks is the distributed-transport seam of a world.
type netHooks struct {
	local int
	send  func(dst, tag int, payload any) error
	fail  func(err error)
}

// Comm is one rank's view of the world — the handle kernels receive, like
// an MPI_Comm plus the rank.
type Comm struct {
	w       *world
	rank    int
	timeout time.Duration // per-Comm watchdog override; 0 = world default
}

// Rank returns the caller's process rank (MPI_Comm_rank).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks (MPI_Comm_size).
func (c *Comm) Size() int { return c.w.size }

// SetRecvTimeout overrides the deadlock watchdog delay for this rank's
// subsequent receives; d <= 0 restores the world default. A serving
// frontend uses a short per-Comm deadline so a wedged student program is
// reported (and its job failed) in milliseconds instead of the default
// 10 s watchdog.
func (c *Comm) SetRecvTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout = d
}

// recvTimeout returns the effective watchdog delay for this Comm.
func (c *Comm) recvTimeout() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return c.w.timeout
}

// Config adjusts the runtime.
type Config struct {
	// RecvTimeout overrides the deadlock watchdog delay; zero keeps
	// DefaultRecvTimeout. Individual ranks can further override it with
	// Comm.SetRecvTimeout.
	RecvTimeout time.Duration
}

// Run launches np ranks, each executing fn with its own Comm, and waits for
// all of them. A rank returning an error or panicking aborts the report
// (all ranks are still joined); the first error is returned, wrapped with
// its rank.
func Run(np int, fn func(c *Comm) error) error {
	return RunContext(context.Background(), np, Config{}, fn)
}

// RunConfig is Run with explicit configuration.
func RunConfig(np int, cfg Config, fn func(c *Comm) error) error {
	return RunContext(context.Background(), np, cfg, fn)
}

// RunContext is RunConfig with cancellation: when ctx is canceled, every
// rank blocked in Recv (or a collective built on it, or Barrier) wakes up
// immediately and returns an error wrapping both ErrCanceled and the
// context's error. Ranks that never block must observe the context
// themselves — the runtime can only interrupt communication.
func RunContext(ctx context.Context, np int, cfg Config, fn func(c *Comm) error) error {
	if np <= 0 {
		return fmt.Errorf("mpi: invalid process count %d", np)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := &world{
		size:    np,
		queues:  make([][]message, np),
		timeout: cfg.RecvTimeout,
		ctx:     ctx,
	}
	if w.timeout <= 0 {
		w.timeout = DefaultRecvTimeout
	}
	w.cond = sync.NewCond(&w.mu)

	// The watcher turns a context cancellation into a condvar broadcast so
	// blocked ranks recheck ctx.Err(); it exits when the world completes.
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				w.mu.Lock()
				w.cond.Broadcast()
				w.mu.Unlock()
			case <-stop:
			}
		}()
	}

	errs := make([]error, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					// Wake any rank blocked on a receive from us.
					w.mu.Lock()
					w.cond.Broadcast()
					w.mu.Unlock()
				}
			}()
			if err := fn(&Comm{w: w, rank: rank}); err != nil {
				errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Send delivers payload to rank dst with the given tag (MPI_Send). Sends
// are buffered and never block. Sending to self is allowed (matched by a
// later Recv), sending to an invalid rank is an error.
func (c *Comm) Send(dst, tag int, payload any) error {
	if dst < 0 || dst >= c.w.size {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", c.rank, dst)
	}
	if c.w.net != nil && dst != c.w.net.local {
		// Distributed world: the payload crosses an address space. The
		// transport may block briefly (synchronous HTTP) but never
		// deadlocks — the receiving side enqueues without waiting.
		return c.w.net.send(dst, tag, payload)
	}
	c.w.mu.Lock()
	c.w.queues[dst] = append(c.w.queues[dst], message{src: c.rank, tag: tag, payload: payload})
	c.w.cond.Broadcast()
	c.w.mu.Unlock()
	return nil
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload and actual source (MPI_Recv). src may be AnySource
// and tag may be AnyTag. Messages from the same sender with the same tag
// are received in send order (the MPI non-overtaking guarantee). A
// canceled world context interrupts the wait immediately; otherwise the
// per-Comm watchdog (SetRecvTimeout, defaulting to the world's
// RecvTimeout) bounds it.
func (c *Comm) Recv(src, tag int) (payload any, from int, err error) {
	timeout := c.recvTimeout()
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.w.mu.Lock()
		c.w.cond.Broadcast()
		c.w.mu.Unlock()
	})
	defer timer.Stop()

	c.w.mu.Lock()
	defer c.w.mu.Unlock()
	for {
		if cerr := c.w.ctx.Err(); cerr != nil {
			return nil, -1, fmt.Errorf("%w: rank %d receive interrupted: %w", ErrCanceled, c.rank, cerr)
		}
		q := c.w.queues[c.rank]
		for i, m := range q {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				c.w.queues[c.rank] = append(q[:i:i], q[i+1:]...)
				return m.payload, m.src, nil
			}
		}
		if time.Now().After(deadline) {
			err := fmt.Errorf("%w: rank %d waiting for src=%d tag=%d after %v",
				ErrDeadlock, c.rank, src, tag, timeout)
			if c.w.net != nil {
				// On a distributed world a silent peer means a dead or
				// partitioned node, not a student deadlock: abort the whole
				// session so no shard keeps waiting.
				c.w.net.fail(err)
			}
			return nil, -1, err
		}
		c.w.cond.Wait()
	}
}

// Barrier blocks until every rank has entered it (MPI_Barrier). When the
// world context is canceled while waiting, Barrier panics with a
// descriptive message: the barrier protocol cannot complete (and has no
// error return), and the rank wrapper in Run recovers the panic into the
// rank's error.
func (c *Comm) Barrier() {
	if c.w.net != nil {
		// The central-counter protocol needs every rank in-process; a
		// distributed barrier would be built on Send/Recv like the other
		// collectives. No kernel uses Barrier across nodes today.
		panic("mpi: Barrier is not supported on a distributed world")
	}
	c.w.mu.Lock()
	phase := c.w.barPhase
	c.w.barWaiting++
	if c.w.barWaiting == c.w.size {
		c.w.barWaiting = 0
		c.w.barPhase++
		c.w.cond.Broadcast()
		c.w.mu.Unlock()
		return
	}
	for phase == c.w.barPhase {
		if cerr := c.w.ctx.Err(); cerr != nil {
			// Undo our registration so a broadcast cannot release a future
			// phase with a stale count.
			c.w.barWaiting--
			c.w.mu.Unlock()
			panic(fmt.Sprintf("mpi: rank %d barrier interrupted: %v", c.rank, cerr))
		}
		c.w.cond.Wait()
	}
	c.w.mu.Unlock()
}

// collective tags live in a reserved negative range so they never collide
// with user tags.
const (
	tagBcast  = -100
	tagGather = -101
	tagReduce = -102
)

// Bcast broadcasts root's payload to every rank and returns it
// (MPI_Bcast). Every rank must call it; non-root ranks pass nil (their
// argument is ignored).
func (c *Comm) Bcast(root int, payload any) (any, error) {
	if root < 0 || root >= c.w.size {
		return nil, fmt.Errorf("mpi: invalid root %d", root)
	}
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r != root {
				if err := c.Send(r, tagBcast, payload); err != nil {
					return nil, err
				}
			}
		}
		return payload, nil
	}
	got, _, err := c.Recv(root, tagBcast)
	return got, err
}

// Gather collects every rank's payload at root; root receives a slice
// indexed by rank, other ranks receive nil (MPI_Gather).
func (c *Comm) Gather(root int, payload any) ([]any, error) {
	if root < 0 || root >= c.w.size {
		return nil, fmt.Errorf("mpi: invalid root %d", root)
	}
	if c.rank != root {
		return nil, c.Send(root, tagGather, payload)
	}
	out := make([]any, c.w.size)
	out[root] = payload
	for i := 0; i < c.w.size-1; i++ {
		got, from, err := c.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[from] = got
	}
	return out, nil
}

// Reduce folds every rank's payload at root with op (MPI_Reduce). op must
// be associative and commutative; it is applied in rank order at root.
// Non-root ranks receive nil.
func (c *Comm) Reduce(root int, payload any, op func(a, b any) any) (any, error) {
	vals, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = op(acc, v)
	}
	return acc, nil
}

// Allreduce is Reduce followed by Bcast: every rank receives the folded
// value (MPI_Allreduce).
func (c *Comm) Allreduce(payload any, op func(a, b any) any) (any, error) {
	red, err := c.Reduce(0, payload, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, red)
}

// AllreduceBool is Allreduce specialized for the "is anybody still
// changing?" convergence votes EASYPAP kernels take (logical OR).
func (c *Comm) AllreduceBool(local bool) (bool, error) {
	v, err := c.Allreduce(local, func(a, b any) any { return a.(bool) || b.(bool) })
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

// AllreduceInt sums an int across ranks.
func (c *Comm) AllreduceInt(local int) (int, error) {
	v, err := c.Allreduce(local, func(a, b any) any { return a.(int) + b.(int) })
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}
