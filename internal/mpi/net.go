package mpi

// Distributed worlds: the same Comm kernels already program against, with
// remote ranks living in other processes. One NetWorld hosts exactly one
// local rank; Send to a remote rank encodes the message with the wire
// codec and hands it to a caller-supplied transport (easypapd POSTs it to
// the peer's /v1/shard/halo endpoint over a persistent connection), and
// frames arriving from peers are Injected into the local mailbox, where
// Recv and every collective built on it work unchanged.
//
// Failure semantics differ deliberately from the in-process world: there
// a lost message means a student bug (report ErrDeadlock and keep the
// process alive); here it means a dead or partitioned peer, and the only
// safe reaction is to abort the whole distributed session. Transport
// failures and receive timeouts therefore cancel the session context with
// a typed cause (ErrPeerLost), which unwinds every blocked receive at
// once — a shard never hangs waiting on a peer that will not answer.

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrPeerLost is the cancel cause of a distributed session whose peer
// became unreachable (transport error) or silent (halo timeout). The
// serving layer maps it to its typed shard-failure error.
var ErrPeerLost = errors.New("mpi: peer rank lost")

// NetWorld hosts one rank of a distributed communicator group.
type NetWorld struct {
	w    *world
	rank int

	cancel context.CancelCauseFunc
	stop   chan struct{}
	once   sync.Once
}

// NewNetWorld creates the local end of a size-rank distributed world.
// send transmits an encoded frame to a peer rank; it may block (the
// caller's transport is synchronous HTTP) and must return an error when
// the peer is unreachable. cancel is the session's cancel-cause function:
// the world invokes it with an ErrPeerLost-wrapping cause on transport
// failure or receive timeout, so the session's context (which must be
// ctx or derived from it) aborts every participant promptly.
func NewNetWorld(ctx context.Context, cancel context.CancelCauseFunc, size, rank int, cfg Config, send func(dst int, frame []byte) error) (*NetWorld, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: invalid rank %d of %d", rank, size)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cancel == nil {
		cancel = func(error) {}
	}
	w := &world{
		size:    size,
		queues:  make([][]message, size),
		timeout: cfg.RecvTimeout,
		ctx:     ctx,
	}
	if w.timeout <= 0 {
		w.timeout = DefaultRecvTimeout
	}
	w.cond = sync.NewCond(&w.mu)
	nw := &NetWorld{w: w, rank: rank, cancel: cancel, stop: make(chan struct{})}
	w.net = &netHooks{
		local: rank,
		send: func(dst, tag int, payload any) error {
			frame, err := EncodeFrame(rank, dst, tag, payload)
			if err != nil {
				return err
			}
			if err := send(dst, frame); err != nil {
				err = fmt.Errorf("%w: send to rank %d: %w", ErrPeerLost, dst, err)
				cancel(err)
				return err
			}
			return nil
		},
		fail: func(err error) {
			cancel(fmt.Errorf("%w: %w", ErrPeerLost, err))
		},
	}
	// Turn a context cancellation into a condvar broadcast so a blocked
	// Recv rechecks ctx.Err() immediately (RunContext does the same for
	// in-process worlds).
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.mu.Lock()
				w.cond.Broadcast()
				w.mu.Unlock()
			case <-nw.stop:
			}
		}()
	}
	return nw, nil
}

// Comm returns the local rank's communicator handle.
func (nw *NetWorld) Comm() *Comm { return &Comm{w: nw.w, rank: nw.rank} }

// Rank returns the local rank.
func (nw *NetWorld) Rank() int { return nw.rank }

// Inject delivers a frame received from a peer into the local mailbox.
// It validates the frame (CRC included) and rejects frames addressed to
// a different rank — a misrouted halo is a protocol bug worth surfacing,
// not silently queueing.
func (nw *NetWorld) Inject(frame []byte) error {
	src, dst, tag, payload, err := DecodeFrame(frame)
	if err != nil {
		return err
	}
	if dst != nw.rank {
		return fmt.Errorf("mpi: frame for rank %d injected into rank %d", dst, nw.rank)
	}
	if src < 0 || src >= nw.w.size {
		return fmt.Errorf("mpi: frame from invalid rank %d", src)
	}
	nw.w.mu.Lock()
	nw.w.queues[nw.rank] = append(nw.w.queues[nw.rank], message{src: src, tag: tag, payload: payload})
	nw.w.cond.Broadcast()
	nw.w.mu.Unlock()
	return nil
}

// Fail aborts the session with the given cause (wrapped in ErrPeerLost),
// waking every blocked receive. Used by the serving layer when a peer is
// reported dead out-of-band (gossip) before any message times out.
func (nw *NetWorld) Fail(err error) {
	nw.w.net.fail(err)
	nw.w.mu.Lock()
	nw.w.cond.Broadcast()
	nw.w.mu.Unlock()
}

// Close releases the world's watcher goroutine. It does not cancel the
// session; pair it with the session's cancel function.
func (nw *NetWorld) Close() {
	nw.once.Do(func() { close(nw.stop) })
}
