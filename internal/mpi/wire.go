package mpi

// Wire codec for distributed worlds: the byte encoding of one tagged
// message crossing an address-space boundary. The framing follows the
// store's EZSTORE1 discipline (internal/serve/store): a one-line ASCII
// header carrying every length needed to read the rest, an exact
// byte-counted payload, and a CRC-32C trailer — corruption is detected
// before a payload is ever interpreted, and a frame can be skipped
// without understanding its type.
//
//	EZMSG1 <src> <dst> <tag> <type> <payload-bytes>\n
//	<payload bytes>
//	<crc32c of header+payload, 4 bytes big-endian>
//
// The payload types are exactly the ones the in-process runtime carries
// for EASYPAP kernels: convergence votes (bool, []bool), counters (int),
// pixel bands ([]uint32), cell rows ([]uint8), and the combined halo
// packet (boundary row + frontier flags) of the frontier-aware exchange.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

const wireMagic = "EZMSG1"

// wireMaxPayload bounds a frame's payload (matching the store's sanity
// cap): a halo row or a gathered band is far below this; anything larger
// is a corrupt or hostile header.
const wireMaxPayload = 1 << 30

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// Payload type tokens. Kept short: they ride in every frame header.
const (
	wireBool  = "bool"
	wireInt   = "int"
	wireU8    = "u8"
	wireU32   = "u32"
	wireFlags = "flags"
	wireHalo  = "halo"
)

// EncodeFrame serializes one message for transport. Supported payload
// types: bool, int, []uint8, []uint32, []bool, HaloPacket.
func EncodeFrame(src, dst, tag int, payload any) ([]byte, error) {
	var typ string
	var body []byte
	switch v := payload.(type) {
	case bool:
		typ = wireBool
		if v {
			body = []byte{1}
		} else {
			body = []byte{0}
		}
	case int:
		typ = wireInt
		body = make([]byte, 8)
		binary.BigEndian.PutUint64(body, uint64(int64(v)))
	case []uint8:
		typ = wireU8
		body = v
	case []uint32:
		typ = wireU32
		body = make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(body[4*i:], x)
		}
	case []bool:
		typ = wireFlags
		body = encodeFlags(v)
	case HaloPacket:
		typ = wireHalo
		body = make([]byte, 0, 4+len(v.Row)+4+(len(v.Flags)+7)/8)
		body = binary.BigEndian.AppendUint32(body, uint32(len(v.Row)))
		body = append(body, v.Row...)
		body = append(body, encodeFlags(v.Flags)...)
	default:
		return nil, fmt.Errorf("mpi: payload type %T is not wire-encodable", payload)
	}
	header := fmt.Sprintf("%s %d %d %d %s %d\n", wireMagic, src, dst, tag, typ, len(body))
	frame := make([]byte, 0, len(header)+len(body)+4)
	frame = append(frame, header...)
	frame = append(frame, body...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(frame, wireCRC))
	return frame, nil
}

// DecodeFrame parses a frame produced by EncodeFrame, verifying the CRC
// before interpreting the payload.
func DecodeFrame(frame []byte) (src, dst, tag int, payload any, err error) {
	nl := -1
	for i, b := range frame {
		if b == '\n' {
			nl = i
			break
		}
		if i > 128 {
			break
		}
	}
	if nl < 0 {
		return 0, 0, 0, nil, fmt.Errorf("mpi: wire frame has no header line")
	}
	fields := strings.Fields(string(frame[:nl]))
	if len(fields) != 6 || fields[0] != wireMagic {
		return 0, 0, 0, nil, fmt.Errorf("mpi: malformed wire header %q", string(frame[:nl]))
	}
	src, err1 := strconv.Atoi(fields[1])
	dst, err2 := strconv.Atoi(fields[2])
	tag, err3 := strconv.Atoi(fields[3])
	n, err4 := strconv.Atoi(fields[5])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || n < 0 || n > wireMaxPayload {
		return 0, 0, 0, nil, fmt.Errorf("mpi: malformed wire header %q", string(frame[:nl]))
	}
	if len(frame) != nl+1+n+4 {
		return 0, 0, 0, nil, fmt.Errorf("mpi: wire frame is %d bytes, header promises %d", len(frame), nl+1+n+4)
	}
	want := binary.BigEndian.Uint32(frame[nl+1+n:])
	if got := crc32.Checksum(frame[:nl+1+n], wireCRC); got != want {
		return 0, 0, 0, nil, fmt.Errorf("mpi: wire frame CRC mismatch (%08x != %08x)", got, want)
	}
	body := frame[nl+1 : nl+1+n]
	switch fields[4] {
	case wireBool:
		if len(body) != 1 {
			return 0, 0, 0, nil, fmt.Errorf("mpi: bool payload of %d bytes", len(body))
		}
		payload = body[0] != 0
	case wireInt:
		if len(body) != 8 {
			return 0, 0, 0, nil, fmt.Errorf("mpi: int payload of %d bytes", len(body))
		}
		payload = int(int64(binary.BigEndian.Uint64(body)))
	case wireU8:
		payload = append([]uint8(nil), body...)
	case wireU32:
		if len(body)%4 != 0 {
			return 0, 0, 0, nil, fmt.Errorf("mpi: u32 payload of %d bytes", len(body))
		}
		out := make([]uint32, len(body)/4)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(body[4*i:])
		}
		payload = out
	case wireFlags:
		flags, rest, err := decodeFlags(body)
		if err != nil || len(rest) != 0 {
			return 0, 0, 0, nil, fmt.Errorf("mpi: malformed flags payload")
		}
		payload = flags
	case wireHalo:
		if len(body) < 4 {
			return 0, 0, 0, nil, fmt.Errorf("mpi: malformed halo payload")
		}
		rowLen := int(binary.BigEndian.Uint32(body))
		if rowLen < 0 || 4+rowLen > len(body) {
			return 0, 0, 0, nil, fmt.Errorf("mpi: halo row of %d bytes overruns payload", rowLen)
		}
		row := append([]byte(nil), body[4:4+rowLen]...)
		flags, rest, err := decodeFlags(body[4+rowLen:])
		if err != nil || len(rest) != 0 {
			return 0, 0, 0, nil, fmt.Errorf("mpi: malformed halo flags")
		}
		payload = HaloPacket{Row: row, Flags: flags}
	default:
		return 0, 0, 0, nil, fmt.Errorf("mpi: unknown wire payload type %q", fields[4])
	}
	return src, dst, tag, payload, nil
}

// encodeFlags bit-packs a []bool: a 4-byte big-endian count followed by
// ceil(n/8) bytes, LSB-first within each byte. A nil slice round-trips
// to nil (count 0), preserving the "no flags at the world edge" case.
func encodeFlags(flags []bool) []byte {
	out := make([]byte, 4+(len(flags)+7)/8)
	binary.BigEndian.PutUint32(out, uint32(len(flags)))
	for i, f := range flags {
		if f {
			out[4+i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// decodeFlags reverses encodeFlags, returning the remaining bytes.
func decodeFlags(b []byte) ([]bool, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("mpi: truncated flags")
	}
	n := int(binary.BigEndian.Uint32(b))
	packed := (n + 7) / 8
	if n < 0 || n > wireMaxPayload || len(b) < 4+packed {
		return nil, nil, fmt.Errorf("mpi: truncated flags")
	}
	if n == 0 {
		return nil, b[4+packed:], nil
	}
	flags := make([]bool, n)
	for i := range flags {
		flags[i] = b[4+i/8]&(1<<(i%8)) != 0
	}
	return flags, b[4+packed:], nil
}
