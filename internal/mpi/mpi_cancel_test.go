package mpi

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Canceling the world context must wake a blocked Recv immediately — the
// daemon's cancellation path for wedged MPI jobs — instead of waiting out
// the 10 s watchdog.
func TestRunContextCancelsBlockedRecv(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := RunContext(ctx, 2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			_, _, err := c.Recv(1, 7) // rank 1 never sends: wedged program
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("canceled world returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancellation took %v, the watchdog must not be the wakeup path", el)
	}
}

// A pre-canceled context fails receives without blocking at all.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunContext(ctx, 2, Config{}, func(c *Comm) error {
		_, _, err := c.Recv(AnySource, AnyTag)
		return err
	})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not wrap ErrCanceled", err)
	}
}

// SetRecvTimeout tightens the watchdog for one rank only.
func TestPerCommRecvTimeout(t *testing.T) {
	start := time.Now()
	err := RunConfig(2, Config{RecvTimeout: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SetRecvTimeout(50 * time.Millisecond)
			_, _, err := c.Recv(1, 9) // rank 1 never sends
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("error %v does not wrap ErrDeadlock", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("per-Comm timeout ignored: receive waited %v", el)
	}
}

// SetRecvTimeout(0) restores the world default.
func TestPerCommRecvTimeoutRestore(t *testing.T) {
	err := RunConfig(2, Config{RecvTimeout: 80 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SetRecvTimeout(time.Millisecond)
			c.SetRecvTimeout(0)
			// With the 1ms override still active this receive would race the
			// sender's sleep; at the 80ms world default it comfortably wins.
			got, _, err := c.Recv(1, 1)
			if err != nil {
				return err
			}
			if got.(int) != 42 {
				t.Errorf("got %v", got)
			}
			return nil
		}
		time.Sleep(20 * time.Millisecond)
		return c.Send(0, 1, 42)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Cancellation interrupts a barrier that can never complete (one rank
// already returned); the panic is recovered into the rank's error.
func TestRunContextCancelsBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := RunContext(ctx, 2, Config{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier() // rank 1 exits immediately: barrier never completes
		}
		return nil
	})
	if err == nil {
		t.Fatal("interrupted barrier returned no error")
	}
}
