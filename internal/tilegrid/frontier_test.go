package tilegrid

import (
	"sync"
	"testing"

	"easypap/internal/sched"
)

func activeSet(f *Frontier) map[int]bool {
	set := make(map[int]bool)
	for _, t := range f.Active() {
		set[int(t)] = true
	}
	return set
}

// TestNewStartsFullyActive: the first Advance must dispatch every tile —
// the "first lazy iteration computes everything" rule.
func TestNewStartsFullyActive(t *testing.T) {
	g := sched.MustTileGrid(128, 16, 16)
	f := New(g)
	if n := f.Advance(); n != g.Tiles() {
		t.Fatalf("first Advance: %d active tiles, want %d", n, g.Tiles())
	}
	for tile := 0; tile < g.Tiles(); tile++ {
		if !f.IsActive(tile) {
			t.Fatalf("tile %d not active after initial MarkAll", tile)
		}
	}
	// Nothing marked during the iteration: the frontier collapses.
	if n := f.Advance(); n != 0 {
		t.Fatalf("second Advance with no marks: %d active, want 0", n)
	}
}

// TestMarkChangedSpreadsToNeighbourhood: a changed tile activates its 3x3
// neighbourhood, clamped at the grid borders.
func TestMarkChangedSpreadsToNeighbourhood(t *testing.T) {
	g := sched.MustTileGrid(64, 8, 8) // 8x8 tiles
	f := New(g)
	f.Advance() // consume the initial full marking

	f.MarkChanged(3, 4)
	f.Advance()
	set := activeSet(f)
	if len(set) != 9 {
		t.Fatalf("interior change: %d active tiles, want 9: %v", len(set), set)
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			tile := (4+dy)*8 + 3 + dx
			if !set[tile] {
				t.Errorf("neighbour tile %d not active", tile)
			}
		}
	}

	// Corner change: clamped to the 4 in-grid tiles.
	f.MarkChanged(0, 0)
	f.Advance()
	set = activeSet(f)
	want := map[int]bool{0: true, 1: true, 8: true, 9: true}
	if len(set) != len(want) {
		t.Fatalf("corner change: active %v, want %v", set, want)
	}
	for tile := range want {
		if !set[tile] {
			t.Errorf("corner neighbour %d not active", tile)
		}
	}
}

// TestMarkSingleTile: Mark activates exactly one tile, and out-of-grid
// marks are ignored.
func TestMarkSingleTile(t *testing.T) {
	g := sched.MustTileGrid(64, 8, 8)
	f := New(g)
	f.Advance()
	f.Mark(5, 5)
	f.Mark(-1, 0)
	f.Mark(0, 8)
	if n := f.Advance(); n != 1 || f.Active()[0] != 5*8+5 {
		t.Fatalf("single mark: active = %v, want [45]", f.Active())
	}
}

// TestWordBoundarySpans: neighbourhood spans crossing 64-bit word
// boundaries must set exactly the right bits (tilesX=67 keeps rows and
// words misaligned).
func TestWordBoundarySpans(t *testing.T) {
	g := sched.MustTileGrid(67*4, 4, 4) // 67x67 tiles
	f := New(g)
	f.Advance()
	for _, tx := range []int{62, 63, 64, 65} {
		f.MarkChanged(tx, 31)
	}
	f.Advance()
	set := activeSet(f)
	for ty := 30; ty <= 32; ty++ {
		for tx := 61; tx <= 66; tx++ {
			if !set[ty*67+tx] {
				t.Errorf("tile (%d,%d) missing from word-boundary span", tx, ty)
			}
		}
	}
	if len(set) != 3*6 {
		t.Errorf("%d active tiles, want %d", len(set), 3*6)
	}
}

// TestRestrictAndRowFlags: a band-restricted frontier dispatches only its
// own rows, keeps halo marks for export, and merges a neighbour's flags.
func TestRestrictAndRowFlags(t *testing.T) {
	g := sched.MustTileGrid(64, 8, 8) // 8x8 tiles
	f := New(g)
	f.Restrict(4, 8) // bottom half: rows 4..7
	if n := f.Advance(); n != 4*8 {
		t.Fatalf("restricted initial frontier: %d tiles, want %d", n, 4*8)
	}
	if f.Total() != 32 {
		t.Fatalf("Total() = %d, want 32", f.Total())
	}

	// A change in the band's first row spreads into halo row 3 (owned by
	// the neighbour above): exported via RowFlags, never dispatched here.
	f.MarkChanged(2, 4)
	halo := f.RowFlags(3)
	wantHalo := []bool{false, true, true, true, false, false, false, false}
	for i, w := range wantHalo {
		if halo[i] != w {
			t.Fatalf("halo row flags = %v, want %v", halo, wantHalo)
		}
	}
	f.Advance()
	for _, tile := range f.Active() {
		if int(tile) < 4*8 {
			t.Fatalf("dispatched tile %d outside the band", tile)
		}
	}

	// Merging a neighbour's forwarded flags activates band tiles directly.
	f.MergeRowFlags(4, []bool{false, false, false, false, false, true, false, false})
	f.MergeRowFlags(-1, []bool{true}) // out of grid: no-op
	f.MergeRowFlags(4, nil)           // world edge: no-op
	f.Advance()
	if n := f.Count(); n != 1 || int(f.Active()[0]) != 4*8+5 {
		t.Fatalf("merged flags: active = %v, want [37]", f.Active())
	}

	// RowFlags outside the grid (world edges) is nil.
	if f.RowFlags(-1) != nil || f.RowFlags(8) != nil {
		t.Fatal("RowFlags outside the grid must be nil")
	}
}

// TestConcurrentMarking: racing markers from many goroutines lose no
// marks (run with -race in CI).
func TestConcurrentMarking(t *testing.T) {
	g := sched.MustTileGrid(256, 8, 8) // 32x32 tiles
	f := New(g)
	f.Advance()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ty := 0; ty < 32; ty++ {
				f.MarkChanged(w*4, ty)
			}
		}(w)
	}
	wg.Wait()
	f.Advance()
	set := activeSet(f)
	for w := 0; w < 8; w++ {
		for ty := 0; ty < 32; ty++ {
			for dx := -1; dx <= 1; dx++ {
				tx := w*4 + dx
				if tx < 0 || tx >= 32 {
					continue
				}
				if !set[ty*32+tx] {
					t.Fatalf("concurrent mark lost: tile (%d,%d)", tx, ty)
				}
			}
		}
	}
}

// TestAdvanceSteadyStateAllocs: the swap-and-compact boundary must not
// allocate once warm.
func TestAdvanceSteadyStateAllocs(t *testing.T) {
	g := sched.MustTileGrid(256, 8, 8)
	f := New(g)
	f.Advance()
	allocs := testing.AllocsPerRun(100, func() {
		f.MarkChanged(5, 5)
		f.MarkChanged(20, 20)
		f.Advance()
	})
	if allocs != 0 {
		t.Errorf("Advance allocates %.1f objects per iteration, want 0", allocs)
	}
}
