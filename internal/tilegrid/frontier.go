// Package tilegrid is the shared lazy tile-activity engine behind every
// lazy kernel variant (paper §III-D): a double-buffered frontier of active
// tiles over a sched.TileGrid. Workers concurrently mark a tile (and its
// neighbourhood) active for the *next* iteration with lock-free bitset
// operations while the *current* iteration's active set is being consumed;
// at the iteration boundary Advance compacts the marks into a dense active
// list that sched.Pool.ParallelForActive dispatches — cost proportional to
// the number of active tiles, not the grid size.
//
// Before this package, life, sandpile and asandpile each carried a private
// changed[]/prevChange[] implementation of the same idea, and lazy variants
// still paid a full-grid scan per iteration to decide which tiles to skip.
// The frontier replaces those three copies and removes the scan.
//
// The no-copy invariant (why skipped tiles need no copy-tile fallback):
// double-buffered stencil kernels historically copied every skipped tile
// from cur to next so the cells survived the buffer swap. With the frontier
// discipline — "a tile that changes marks itself and its 8 neighbours
// active for the next iteration, and every computed tile writes all its
// cells" — the copy is provably unnecessary: a tile inactive at iteration k
// was computed-and-unchanged (or not computed) at k-1, so the write at k-1
// made both buffers equal on that tile; inductively they stay equal for as
// long as the tile stays out of the frontier, and the swap is harmless.
// DESIGN.md §7 spells out the induction.
package tilegrid

import (
	"fmt"
	mathbits "math/bits"
	"sync/atomic"

	"easypap/internal/sched"
)

// Frontier is the double-buffered tile-activity set. The marking side
// (Mark, MarkChanged, MergeRowFlags) is safe for concurrent use by any
// number of workers; the boundary side (Advance, Active, Count) must be
// called from one goroutine between parallel constructs, exactly like a
// buffer swap.
type Frontier struct {
	grid sched.TileGrid

	// next collects marks for the following iteration (atomic bitset,
	// one bit per tile). cur is the snapshot being consumed: Advance
	// swaps the two and clears the new next, so steady-state operation
	// allocates nothing.
	next []uint64
	cur  []uint64

	// active is the compacted list of cur's set bits (band rows only),
	// reused across iterations.
	active []int32

	// tyLo/tyHi restrict Advance's compaction to the owned tile rows
	// [tyLo, tyHi) — the MPI band of this rank. Marks may still land in
	// the halo rows tyLo-1 and tyHi; they are exported to the owning
	// rank with RowFlags, never dispatched locally.
	tyLo, tyHi int
}

// New builds a frontier over the grid with every tile marked active, so
// the first Advance dispatches the full grid — the "first lazy iteration
// computes everything" rule lazy kernels start from.
func New(grid sched.TileGrid) *Frontier {
	words := (grid.Tiles() + 63) / 64
	f := &Frontier{
		grid:   grid,
		next:   make([]uint64, words),
		cur:    make([]uint64, words),
		active: make([]int32, 0, grid.Tiles()),
		tyLo:   0,
		tyHi:   grid.TilesY,
	}
	f.MarkAll()
	return f
}

// Restrict limits the frontier to tile rows [tyLo, tyHi) — one MPI rank's
// band. Initial marks outside the band are discarded; subsequent marks may
// still spread one row into the halo (tyLo-1, tyHi) for export to the
// neighbouring rank. Restrict panics on an empty or out-of-range band:
// that is a decomposition bug, not a runtime condition.
func (f *Frontier) Restrict(tyLo, tyHi int) {
	if tyLo < 0 || tyHi > f.grid.TilesY || tyLo >= tyHi {
		panic(fmt.Sprintf("tilegrid: band [%d,%d) outside grid of %d tile rows",
			tyLo, tyHi, f.grid.TilesY))
	}
	f.tyLo, f.tyHi = tyLo, tyHi
	// Re-seed: only the owned rows start active.
	for i := range f.next {
		f.next[i] = 0
	}
	f.markRowRange(tyLo, tyHi)
}

// Grid returns the tile decomposition the frontier tracks.
func (f *Frontier) Grid() sched.TileGrid { return f.grid }

// MarkAll marks every owned tile active for the next iteration.
func (f *Frontier) MarkAll() { f.markRowRange(f.tyLo, f.tyHi) }

func (f *Frontier) markRowRange(tyLo, tyHi int) {
	for ty := tyLo; ty < tyHi; ty++ {
		f.orSpan(ty*f.grid.TilesX, (ty+1)*f.grid.TilesX-1)
	}
}

// Mark marks the single tile (tx, ty) active for the next iteration.
func (f *Frontier) Mark(tx, ty int) {
	if tx < 0 || tx >= f.grid.TilesX || ty < 0 || ty >= f.grid.TilesY {
		return
	}
	f.orSpan(ty*f.grid.TilesX+tx, ty*f.grid.TilesX+tx)
}

// MarkChanged records that tile (tx, ty) changed during the current
// iteration: the tile and its 8 neighbours become active for the next one
// — the neighbourhood criterion of §III-D, inverted from "did my
// neighbourhood change?" (a full-grid query per tile) into "spread my
// change to my neighbourhood" (a few atomic ORs per *changed* tile).
// Safe for concurrent use; marks outside the grid are clamped away, marks
// in another rank's halo row are kept for export.
func (f *Frontier) MarkChanged(tx, ty int) {
	x0, x1 := tx-1, tx+1
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= f.grid.TilesX {
		x1 = f.grid.TilesX - 1
	}
	for ny := ty - 1; ny <= ty+1; ny++ {
		if ny < 0 || ny >= f.grid.TilesY {
			continue
		}
		base := ny * f.grid.TilesX
		f.orSpan(base+x0, base+x1)
	}
}

// orSpan sets bits [lo, hi] (inclusive) of the next bitset. A cheap
// read-first test skips the RMW when the bits are already set — in steady
// state the same frontier tiles are re-marked by up to nine neighbours per
// iteration, and the loads keep those cache lines shared instead of
// ping-ponging in exclusive mode.
func (f *Frontier) orSpan(lo, hi int) {
	for w := lo >> 6; w <= hi>>6; w++ {
		mask := ^uint64(0)
		if w == lo>>6 {
			mask &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == hi>>6 {
			mask &= (uint64(2) << (uint(hi) & 63)) - 1
		}
		if atomic.LoadUint64(&f.next[w])&mask != mask {
			atomic.OrUint64(&f.next[w], mask)
		}
	}
}

// Advance ends an iteration: it promotes the next-iteration marks to the
// current active set, clears the marking buffer, and compacts the owned
// tiles into the active list. It returns the number of active tiles —
// zero means the computation converged. Advance allocates nothing in
// steady state (the list's backing array is reused).
func (f *Frontier) Advance() int {
	f.cur, f.next = f.next, f.cur
	for i := range f.next {
		f.next[i] = 0
	}
	return f.compact()
}

// compact rebuilds the active list from cur's owned bits and returns its
// length.
func (f *Frontier) compact() int {
	f.active = f.active[:0]
	tilesX := f.grid.TilesX
	lo, hi := f.tyLo*tilesX, f.tyHi*tilesX
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		bits := f.cur[w]
		if bits == 0 {
			continue
		}
		base := w << 6
		for bits != 0 {
			tile := base + mathbits.TrailingZeros64(bits)
			bits &= bits - 1
			if tile >= lo && tile < hi {
				f.active = append(f.active, int32(tile))
			}
		}
	}
	return len(f.active)
}

// Words returns a copy of the current active set's bitset words — the
// serialized form of the frontier for checkpointing. Taken right after
// Advance, it captures exactly the tiles the next compute call will
// dispatch (the marking buffer is empty at that point, so nothing is
// lost). Call it from the boundary side only.
func (f *Frontier) Words() []uint64 {
	out := make([]uint64, len(f.cur))
	copy(out, f.cur)
	return out
}

// Restore replaces the current active set with previously captured Words
// and recompacts the active list, clearing any pending marks — the
// inverse of Words, used to resume a lazy run from a checkpoint. It
// rejects a word count that does not match the grid (a snapshot from a
// different decomposition).
func (f *Frontier) Restore(words []uint64) error {
	if len(words) != len(f.cur) {
		return fmt.Errorf("tilegrid: restoring %d frontier words into a grid needing %d",
			len(words), len(f.cur))
	}
	copy(f.cur, words)
	for i := range f.next {
		f.next[i] = 0
	}
	f.compact()
	return nil
}

// Active returns the compacted list of tiles active in the current
// iteration (ascending tile index). The slice is valid until the next
// Advance and must not be mutated — hand it to ParallelForActive as is.
func (f *Frontier) Active() []int32 { return f.active }

// Count returns the number of tiles active in the current iteration.
func (f *Frontier) Count() int { return len(f.active) }

// Total returns the number of owned tiles (the band's tiles, or the whole
// grid when unrestricted) — the denominator of activity ratios.
func (f *Frontier) Total() int { return (f.tyHi - f.tyLo) * f.grid.TilesX }

// IsActive reports whether the tile is in the current active set.
func (f *Frontier) IsActive(tile int) bool {
	if tile < 0 || tile >= f.grid.Tiles() {
		return false
	}
	return f.cur[tile>>6]&(1<<(uint(tile)&63)) != 0
}

// RowFlags reads the next-iteration marks of tile row ty as a []bool —
// the frontier flags a rank forwards to the neighbour owning that row
// (the halo rows tyLo-1 and tyHi). It returns nil for rows outside the
// grid, so band edges need no special casing. RowFlags must be called
// between the marking phase and Advance (Advance clears the marks).
func (f *Frontier) RowFlags(ty int) []bool {
	if ty < 0 || ty >= f.grid.TilesY {
		return nil
	}
	flags := make([]bool, f.grid.TilesX)
	base := ty * f.grid.TilesX
	for tx := range flags {
		tile := base + tx
		flags[tx] = atomic.LoadUint64(&f.next[tile>>6])&(1<<(uint(tile)&63)) != 0
	}
	return flags
}

// MergeRowFlags ORs a neighbour rank's forwarded frontier flags into tile
// row ty (no neighbourhood spreading — the sender already spread its
// changes when marking). nil flags (world edge) are a no-op.
func (f *Frontier) MergeRowFlags(ty int, flags []bool) {
	if flags == nil || ty < 0 || ty >= f.grid.TilesY {
		return
	}
	base := ty * f.grid.TilesX
	for tx, on := range flags {
		if on && tx < f.grid.TilesX {
			f.orSpan(base+tx, base+tx)
		}
	}
}
