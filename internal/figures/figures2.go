package figures

// Figures 6, 7, 10, 12 and 13: the sweep/plot pipeline, the trace
// explorer views, the blur optimization comparison, the task wavefront and
// the MPI Game of Life.

import (
	"fmt"
	"time"

	"easypap/internal/core"
	"easypap/internal/expt"
	"easypap/internal/ezview"
	"easypap/internal/monitor"
	"easypap/internal/plot"
	"easypap/internal/sched"
	"easypap/internal/trace"
)

// Fig6Result is the speedup-sweep outcome.
type Fig6Result struct {
	Graph   *plot.Graph
	RefTime time.Duration
	// BestSpeedup is the highest speedup reached by any schedule at the
	// maximum thread count.
	BestSpeedup float64
}

// Fig6 reproduces the experiment pipeline of Figs. 5 and 6: an expTools
// sweep (threads x schedules x grain, plus the sequential reference),
// accumulated into CSV, then plotted as per-grain speedup panels with the
// legend generated from the varying parameters.
func Fig6(p Params) (Fig6Result, error) {
	dim := p.dim(1024, 128)
	iters := 10
	threads := []int{2, 4, 6, 8, 10, 12}
	runs := 3
	if p.Quick {
		iters = 2
		threads = []int{2, 4}
		runs = 1
	}
	csvPath := p.OutDir + "/fig6_perf.csv"
	if p.OutDir == "" {
		csvPath = ""
	}

	// Sequential reference (refTime).
	seqSweep := &expt.Sweep{
		Base: core.Config{Kernel: "mandel", Variant: "seq", Dim: dim,
			TileW: 16, TileH: 16, Iterations: iters, Threads: 1, Label: "bench"},
		Runs:    1,
		CSVPath: csvPath,
	}
	seqRes, err := seqSweep.Execute()
	if err != nil {
		return Fig6Result{}, err
	}
	refTime := seqRes[0].WallTime

	sweep := &expt.Sweep{
		Base: core.Config{Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
			Iterations: iters, Label: "bench"},
		Grains:  []int{16, 32},
		Threads: threads,
		Schedules: []sched.Policy{
			sched.StaticPolicy,
			sched.DynamicPolicy(2),
			sched.GuidedPolicy,
			sched.NonmonotonicPolicy,
		},
		Runs:     runs,
		CSVPath:  csvPath,
		Progress: nil,
	}
	p.logf("[fig6] sweeping %d configurations (mandel omp_tiled dim=%d iters=%d)...\n",
		sweep.Size(), dim, iters)
	results, err := sweep.Execute()
	if err != nil {
		return Fig6Result{}, err
	}

	// Build the graph: in-memory when no CSV requested.
	var tab *plot.Table
	if csvPath != "" {
		tab, err = plot.Load(csvPath)
		if err != nil {
			return Fig6Result{}, err
		}
	} else {
		tab = tableFromResults(append(seqRes, results...))
	}
	g, err := plot.Build(tab.Filter(map[string]string{"kernel": "mandel"}),
		plot.Options{XCol: "threads", PanelCol: "tilew", Speedup: true})
	if err != nil {
		return Fig6Result{}, err
	}

	res := Fig6Result{Graph: g, RefTime: refTime}
	p.logf("[fig6] %s\n", g.ConstantsLine())
	for _, panel := range g.Panels {
		p.logf("[fig6] -- %s --\n", panel.Title)
		for _, s := range panel.Series {
			lastPt := s.Points[len(s.Points)-1]
			p.logf("[fig6]   %-36s speedup@%g = %.2fx\n", s.Name, lastPt.X, lastPt.Y)
			if lastPt.Y > res.BestSpeedup {
				res.BestSpeedup = lastPt.Y
			}
		}
	}
	if p.OutDir != "" {
		if err := g.SaveSVG(p.OutDir+"/fig6_speedup.svg", 0, 420); err != nil {
			return res, err
		}
		p.logf("[fig6] wrote %s/fig6_speedup.svg and fig6_perf.csv\n", p.OutDir)
	}
	return res, nil
}

// tableFromResults builds an in-memory plot table from run results.
func tableFromResults(results []core.Result) *plot.Table {
	t := &plot.Table{Columns: core.CSVHeader}
	for _, r := range results {
		rec := plot.Record{}
		row := r.CSVRecord()
		for i, col := range core.CSVHeader {
			rec[col] = row[i]
		}
		t.Rows = append(t.Rows, rec)
	}
	return t
}

// Fig7Result is the Gantt/trace-exploration outcome.
type Fig7Result struct {
	Events     int
	Iterations int
	// TasksUnderCursor is the size of a vertical-mouse query in the middle
	// of the trace (the Fig. 7 interaction).
	TasksUnderCursor int
}

// Fig7 records a trace of mandel omp (the paper's §II-D command) and
// exercises the EASYVIEW views: Gantt SVG plus the vertical-mouse query
// linking tasks to tiles.
func Fig7(p Params) (Fig7Result, error) {
	dim := p.dim(512, 128)
	iters := 10
	if p.Quick {
		iters = 3
	}
	tracePath := "/tmp/easypap_fig7.evt"
	if p.OutDir != "" {
		tracePath = p.OutDir + "/fig7_mandel.evt"
	}
	out, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp", Dim: dim,
		TileW: 16, TileH: 16, Iterations: iters, NoDisplay: true,
		TracePath: tracePath, Threads: 4, Schedule: sched.DynamicPolicy(2),
	})
	if err != nil {
		return Fig7Result{}, err
	}
	v := ezview.New(out.Trace)
	s0, s1 := out.Trace.Span()
	mid := (s0 + s1) / 2
	res := Fig7Result{
		Events:           len(out.Trace.Events),
		Iterations:       out.Trace.Iterations(),
		TasksUnderCursor: len(v.TasksAtTime(mid, 1, iters)),
	}
	p.logf("[fig7] traced %d events over %d iterations; %d tasks under the cursor at t=mid\n",
		res.Events, res.Iterations, res.TasksUnderCursor)
	if p.OutDir != "" {
		if err := v.SaveGanttSVG(p.OutDir+"/fig7_gantt.svg", ezview.GanttOptions{}); err != nil {
			return res, err
		}
		p.logf("[fig7] wrote %s/fig7_gantt.svg\n", p.OutDir)
	}
	return res, nil
}

// Fig10Result is the blur-optimization trace comparison.
type Fig10Result struct {
	Compare trace.CompareResult
	// WallSpeedup is the measured whole-kernel speedup (paper: ~3x on
	// AVX2 hardware; the Go port's branch-elimination yields a smaller but
	// same-direction factor).
	WallSpeedup float64
}

// Fig10 traces the basic and optimized blur variants under identical
// parameters and compares them, the workflow of Fig. 10.
func Fig10(p Params) (Fig10Result, error) {
	dim := p.dim(1024, 256)
	iters := 5
	if p.Quick {
		iters = 2
	}
	run := func(variant, suffix string) (*trace.Trace, time.Duration, error) {
		path := "/tmp/easypap_fig10_" + suffix + ".evt"
		if p.OutDir != "" {
			path = p.OutDir + "/fig10_" + suffix + ".evt"
		}
		out, err := core.Run(core.Config{
			Kernel: "blur", Variant: variant, Dim: dim,
			TileW: 32, TileH: 32, Iterations: iters, NoDisplay: true,
			TracePath: path, Threads: 4, Schedule: sched.NonmonotonicPolicy,
		})
		if err != nil {
			return nil, 0, err
		}
		return out.Trace, out.WallTime, nil
	}
	base, baseWall, err := run("omp_tiled", "base")
	if err != nil {
		return Fig10Result{}, err
	}
	opt, optWall, err := run("omp_tiled_opt", "opt")
	if err != nil {
		return Fig10Result{}, err
	}
	cmp, err := trace.Compare(base, opt)
	if err != nil {
		return Fig10Result{}, err
	}
	res := Fig10Result{Compare: cmp, WallSpeedup: float64(baseWall) / float64(optWall)}
	p.logf("[fig10] blur omp_tiled vs omp_tiled_opt (dim=%d, tile=32):\n", dim)
	p.logf("[fig10] wall speedup %.2fx, trace span speedup %.2fx, median task ratio %.2fx\n",
		res.WallSpeedup, cmp.SpeedupAtoB, cmp.MedianTaskRatio)
	if p.OutDir != "" {
		rep, err := ezview.CompareReport(base, opt)
		if err != nil {
			return res, err
		}
		if err := writeFile(p.OutDir+"/fig10_compare.txt", rep); err != nil {
			return res, err
		}
		p.logf("[fig10] wrote %s/fig10_compare.txt\n", p.OutDir)
	}
	return res, nil
}

// CoverageResult is the §III-B coverage-map study: how clustered each
// CPU's tiles are under different scheduling policies.
type CoverageResult struct {
	// MeanLocality maps a schedule name to the mean (over CPUs) coverage
	// locality: mean Manhattan distance of a CPU's tiles to their
	// centroid, normalized by the grid diagonal. Lower = more clustered.
	MeanLocality map[string]float64
}

// CoverageStudy reproduces the paper's §III-B observation made with the
// EASYVIEW "coverage map" mode: under nonmonotonic:dynamic, the tiles a
// CPU computes are "mostly regrouped in a single area, with only a few
// ones scattered in other places" — i.e. its coverage is more local than
// under plain dynamic scheduling.
func CoverageStudy(p Params) (CoverageResult, error) {
	dim := p.dim(512, 256)
	res := CoverageResult{MeanLocality: map[string]float64{}}
	for _, pol := range []sched.Policy{sched.NonmonotonicPolicy, sched.DynamicPolicy(1)} {
		path := "/tmp/easypap_cov_" + sanitize(pol.String()) + ".evt"
		if p.OutDir != "" {
			path = p.OutDir + "/coverage_" + sanitize(pol.String()) + ".evt"
		}
		out, err := core.Run(core.Config{
			Kernel: "blur", Variant: "omp_tiled_opt", Dim: dim,
			TileW: 16, TileH: 16, Iterations: 6, NoDisplay: true,
			TracePath: path, Threads: 4, Schedule: pol,
		})
		if err != nil {
			return res, err
		}
		v := ezview.New(out.Trace)
		iters := out.Trace.Iterations()
		lo := max(iters-2, 1) // the paper inspects iteration range [7..9]
		var sum float64
		rows := v.Rows()
		for _, cpu := range rows {
			sum += v.CoverageLocality(cpu, lo, iters)
		}
		res.MeanLocality[pol.String()] = sum / float64(len(rows))
		if p.OutDir != "" {
			cov, err := v.CoverageMap(out.Final, rows[len(rows)/2], lo, iters, 256)
			if err != nil {
				return res, err
			}
			if err := cov.SavePNG(p.OutDir + "/coverage_" + sanitize(pol.String()) + ".png"); err != nil {
				return res, err
			}
		}
	}
	p.logf("[coverage] mean locality (lower = more clustered): nonmonotonic=%.3f dynamic,1=%.3f\n",
		res.MeanLocality["nonmonotonic:dynamic"], res.MeanLocality["dynamic,1"])
	if p.OutDir != "" {
		p.logf("[coverage] wrote %s/coverage_<schedule>.png\n", p.OutDir)
	}
	return res, nil
}

// Fig12Result is the task-wavefront verification.
type Fig12Result struct {
	Violations int
	TaskEvents int
	// WaveConcurrency and SerialConcurrency are the maximum numbers of
	// simultaneously running tasks: the correct wave overlaps independent
	// anti-diagonal tiles, the over-constrained graph runs one task at a
	// time — exactly what students see in EASYVIEW.
	WaveConcurrency   int
	SerialConcurrency int
}

// Fig12 traces the cc task variant and verifies the wavefront property of
// Figs. 11/12 — every down-right task starts only after its left and upper
// neighbours finished — and contrasts it with the over-constrained variant
// students write by mistake (which serializes).
func Fig12(p Params) (Fig12Result, error) {
	dim := p.dim(512, 128)
	run := func(variant, suffix string) (*trace.Trace, time.Duration, error) {
		path := "/tmp/easypap_fig12_" + suffix + ".evt"
		if p.OutDir != "" {
			path = p.OutDir + "/fig12_" + suffix + ".evt"
		}
		out, err := core.Run(core.Config{
			Kernel: "cc", Variant: variant, Dim: dim,
			TileW: dim / 8, TileH: dim / 8, Iterations: 3, NoDisplay: true,
			TracePath: path, Threads: 4, Seed: 21,
		})
		if err != nil {
			return nil, 0, err
		}
		return out.Trace, out.WallTime, nil
	}
	good, _, err := run("task", "wave")
	if err != nil {
		return Fig12Result{}, err
	}
	over, _, err := run("task_overconstrained", "serial")
	if err != nil {
		return Fig12Result{}, err
	}
	v := ezview.New(good)
	res := Fig12Result{TaskEvents: len(good.Events)}
	for iter := 1; iter <= good.Iterations(); iter++ {
		res.Violations += v.WavefrontOrder(iter)
	}
	res.WaveConcurrency = v.MaxConcurrency(1, good.Iterations())
	res.SerialConcurrency = ezview.New(over).MaxConcurrency(1, over.Iterations())
	p.logf("[fig12] cc task wavefront: %d task events, %d dependency violations\n",
		res.TaskEvents, res.Violations)
	p.logf("[fig12] max concurrency: wave=%d, overconstrained=%d (the student mistake serializes)\n",
		res.WaveConcurrency, res.SerialConcurrency)
	if p.OutDir != "" {
		if err := v.SaveGanttSVG(p.OutDir+"/fig12_wave_gantt.svg",
			ezview.GanttOptions{IterLo: 1, IterHi: 1, Caption: "cc task wavefront (iteration 1)"}); err != nil {
			return res, err
		}
		p.logf("[fig12] wrote %s/fig12_wave_gantt.svg\n", p.OutDir)
	}
	return res, nil
}

// Fig13Result is the MPI Game of Life observation.
type Fig13Result struct {
	Ranks          int
	ThreadsPerRank int
	// ComputedFraction is the fraction of tiles computed in the last
	// iteration (lazy evaluation on the sparse diagonal dataset).
	ComputedFraction float64
	// DiagonalHitRate is the fraction of computed tiles lying near a
	// diagonal — the paper's check that "only tiles located near diagonals
	// are computed".
	DiagonalHitRate float64
	// EachRankWorked reports whether every process computed tiles in its
	// own band.
	EachRankWorked bool
}

// Fig13 runs the lazy MPI+OpenMP Game of Life on the sparse "planers along
// the diagonals" dataset with 2 processes x 4 threads and debug-mode
// monitoring, verifying the paper's visual checks programmatically.
func Fig13(p Params) (Fig13Result, error) {
	dim := p.dim(512, 128)
	iters := 8
	if p.Quick {
		iters = 4
	}
	const np, threads, tile = 2, 4, 8
	out, err := core.Run(core.Config{
		Kernel: "life", Variant: "mpi_omp", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iters, NoDisplay: true,
		Monitoring: true, Threads: threads, MPIRanks: np, Arg: "diag",
		Debug: "M", Schedule: sched.DynamicPolicy(1),
	})
	if err != nil {
		return Fig13Result{}, err
	}
	res := Fig13Result{Ranks: np, ThreadsPerRank: threads, EachRankWorked: true}
	tiles := dim / tile
	totalComputed := 0
	diagHits := 0
	for rank, mon := range out.Monitors {
		if mon == nil {
			return res, fmt.Errorf("fig13: no monitor for rank %d", rank)
		}
		iterStats := mon.Iterations()
		last := iterStats[len(iterStats)-1]
		if len(last.Tiles) == 0 {
			res.EachRankWorked = false
		}
		totalComputed += len(last.Tiles)
		for _, t := range last.Tiles {
			tx, ty := t.X/tile, t.Y/tile
			// Near either diagonal (within 3 tiles)?
			d1 := abs(tx - ty)
			d2 := abs(tx + ty - (tiles - 1))
			if d1 <= 3 || d2 <= 3 {
				diagHits++
			}
		}
		if p.OutDir != "" {
			img := monitor.TilingImage(last, dim, 512)
			if err := img.SavePNG(fmt.Sprintf("%s/fig13_rank%d_tiling.png", p.OutDir, rank)); err != nil {
				return res, err
			}
		}
	}
	res.ComputedFraction = float64(totalComputed) / float64(tiles*tiles)
	if totalComputed > 0 {
		res.DiagonalHitRate = float64(diagHits) / float64(totalComputed)
	}
	p.logf("[fig13] life mpi_omp np=%d threads=%d pattern=diag: %.1f%% of tiles computed, %.0f%% of them near the diagonals\n",
		res.Ranks*res.ThreadsPerRank/threads, threads, res.ComputedFraction*100, res.DiagonalHitRate*100)
	if p.OutDir != "" {
		p.logf("[fig13] wrote %s/fig13_rankN_tiling.png\n", p.OutDir)
	}
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func writeFile(path, content string) error {
	return writeBytes(path, []byte(content))
}
