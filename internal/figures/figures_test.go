package figures

// These tests assert the *qualitative claims* of each paper figure on
// quick-size workloads: who wins, in which direction, which pattern
// appears. Absolute numbers are hardware-dependent and are recorded by the
// benchmarks (bench_test.go at the repository root) into EXPERIMENTS.md.

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func quickParams(t *testing.T) (Params, *bytes.Buffer) {
	t.Helper()
	var log bytes.Buffer
	return Params{Quick: true, OutDir: t.TempDir(), Log: &log}, &log
}

// requireCPUs skips claims that physically cannot hold without real
// hardware parallelism: on a 1-2 vCPU box every "parallel" worker runs
// sequentially, so opportunistic mixing, speedups and wavefront overlap
// are unobservable no matter how correct the scheduler is.
func requireCPUs(t *testing.T, n int) {
	t.Helper()
	if runtime.NumCPU() < n {
		t.Skipf("needs >= %d CPUs to observe parallel interleaving; have %d",
			n, runtime.NumCPU())
	}
}

// eventually retries a timing-sensitive claim: `go test ./...` runs test
// packages concurrently, so any individual measurement can be distorted by
// the other packages' worker pools. A claim that holds in any of a few
// attempts is considered reproduced; a systematic failure still fails.
func eventually(t *testing.T, tries int, claim func() error) {
	t.Helper()
	var err error
	for i := 0; i < tries; i++ {
		if err = claim(); err == nil {
			return
		}
	}
	t.Error(err)
}

func TestPerfModeReportsWallClock(t *testing.T) {
	p, log := quickParams(t)
	res, err := PerfMode(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Iterations != 5 {
		t.Errorf("iterations = %d", res.Result.Iterations)
	}
	if res.Result.WallTime <= 0 {
		t.Error("no wall time")
	}
	if !strings.Contains(log.String(), "iterations completed in") {
		t.Errorf("missing paper-style report: %s", log.String())
	}
}

func TestFig3StaticScheduleIsImbalanced(t *testing.T) {
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := Fig3(p)
		if err != nil {
			return err
		}
		// The paper observes a clear imbalance: the CPUs owning the
		// in-set tiles are far busier than the others.
		if res.Imbalance < 1.15 {
			return fmt.Errorf("static imbalance = %.2f, expected clearly above 1", res.Imbalance)
		}
		if res.Idleness <= 0.05 {
			return fmt.Errorf("idleness = %.2f, expected significant idleness under static", res.Idleness)
		}
		var minL, maxL = 2.0, 0.0
		for _, l := range res.Loads {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		if maxL-minL < 0.2 {
			return fmt.Errorf("load spread = %.2f..%.2f, expected a visible gap", minL, maxL)
		}
		return nil
	})
}

func TestFig4SchedulePatterns(t *testing.T) {
	p, _ := quickParams(t)
	res, err := Fig4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("policies = %d", len(res))
	}
	// Fig 4a: static distributes tiles in contiguous chunks.
	if !res["static"].Contiguous {
		t.Error("static assignment is not contiguous blocks")
	}
	// Fig 4b/c/d: the dynamic policies break contiguity. Observable only
	// with real concurrency: on a serial box one worker grabs everything.
	requireCPUs(t, 4)
	for _, name := range []string{"dynamic,2", "nonmonotonic:dynamic", "guided"} {
		if res[name].Contiguous {
			t.Errorf("%s produced contiguous blocks; expected opportunistic mixing", name)
		}
	}
	// Guided: run lengths spread over larger values than dynamic,2 (its
	// first grants are big chunks).
	maxRun := func(hist map[int]int) int {
		m := 0
		for k := range hist {
			if k > m {
				m = k
			}
		}
		return m
	}
	if maxRun(res["guided"].RunHist) <= maxRun(res["dynamic,2"].RunHist) {
		t.Errorf("guided max run %d not larger than dynamic,2 max run %d",
			maxRun(res["guided"].RunHist), maxRun(res["dynamic,2"].RunHist))
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	requireCPUs(t, 4) // speedups need real cores
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := Fig6(p)
		if err != nil {
			return err
		}
		if len(res.Graph.Panels) != 2 {
			return fmt.Errorf("panels = %d, want 2 (grain 16 and 32)", len(res.Graph.Panels))
		}
		if res.BestSpeedup < 1.5 {
			return fmt.Errorf("best speedup = %.2f, expected parallel gain", res.BestSpeedup)
		}
		// The paper's headline: static trails the dynamic policies.
		for _, panel := range res.Graph.Panels {
			var static, bestDyn float64
			for _, s := range panel.Series {
				last := s.Points[len(s.Points)-1].Y
				if strings.Contains(s.Name, "static") {
					static = last
				} else if last > bestDyn {
					bestDyn = last
				}
			}
			if static >= bestDyn {
				return fmt.Errorf("%s: static speedup %.2f >= best dynamic %.2f; expected static to trail",
					panel.Title, static, bestDyn)
			}
		}
		// Legend discipline: constants are factored out.
		if res.Graph.Constants["kernel"] != "mandel" {
			return fmt.Errorf("kernel not in the constants banner")
		}
		return nil
	})
}

func TestFig7TraceViews(t *testing.T) {
	p, _ := quickParams(t)
	res, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || res.Iterations != 3 {
		t.Errorf("trace shape: %d events, %d iterations", res.Events, res.Iterations)
	}
	if res.TasksUnderCursor < 1 {
		t.Error("vertical-mouse query returned nothing mid-trace")
	}
}

func TestFig8DynamicPatterns(t *testing.T) {
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := Fig8(p)
		if err != nil {
			return err
		}
		// The owner grid must be fully covered (dynamic never skips).
		for _, row := range res.OwnerGrid {
			for _, w := range row {
				if w < 0 {
					return fmt.Errorf("dynamic schedule left tiles unowned")
				}
			}
		}
		// Pattern 2: the uniformly heavy band exhibits quasi-cyclic owners
		// — an interleaving that only appears with real concurrency.
		requireCPUs(t, 4)
		if res.CyclicScore < 0.5 {
			return fmt.Errorf("cyclic score = %.2f, expected the heavy band to be near-cyclic", res.CyclicScore)
		}
		return nil
	})
}

func TestFig9HeatObservations(t *testing.T) {
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := Fig9(p)
		if err != nil {
			return err
		}
		// (a) mandel: in-set tiles are dramatically slower than
		// far-outside tiles, which is why the heat map redraws the set.
		if res.MandelMaxOverMin < 5 {
			return fmt.Errorf("mandel max/min tile duration = %.1f, expected a large ratio", res.MandelMaxOverMin)
		}
		// (b) blur: border tiles are slower than inner tiles.
		if res.BlurRatio < 1.15 {
			return fmt.Errorf("blur border/inner = %.2f, expected border tiles to be slower", res.BlurRatio)
		}
		return nil
	})
}

func TestFig10BlurOptimizationWins(t *testing.T) {
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := Fig10(p)
		if err != nil {
			return err
		}
		// Paper: ~3x whole-kernel on AVX2 hardware; the Go port must at
		// least show the same direction with a clear per-task improvement.
		if res.WallSpeedup <= 1.0 {
			return fmt.Errorf("optimized blur is not faster: wall speedup %.2f", res.WallSpeedup)
		}
		if res.Compare.MedianTaskRatio < 1.2 {
			return fmt.Errorf("median task ratio = %.2f, expected inner tasks to be clearly faster",
				res.Compare.MedianTaskRatio)
		}
		return nil
	})
}

func TestCoverageLocalityClaim(t *testing.T) {
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := CoverageStudy(p)
		if err != nil {
			return err
		}
		nm := res.MeanLocality["nonmonotonic:dynamic"]
		dyn := res.MeanLocality["dynamic,1"]
		if nm <= 0 || dyn <= 0 {
			return fmt.Errorf("locality metrics missing: %v", res.MeanLocality)
		}
		// §III-B: under nonmonotonic:dynamic a CPU's coverage map is
		// "mostly regrouped in a single area" — more clustered than plain
		// dynamic.
		if nm >= dyn {
			return fmt.Errorf("nonmonotonic locality %.3f not better than dynamic %.3f", nm, dyn)
		}
		return nil
	})
}

func TestFig12WavefrontCorrectAndParallel(t *testing.T) {
	p, _ := quickParams(t)
	eventually(t, 3, func() error {
		res, err := Fig12(p)
		if err != nil {
			return err
		}
		// Correctness claims: never tolerated, but retried together with
		// the concurrency claim for simplicity (they are deterministic).
		if res.Violations != 0 {
			return fmt.Errorf("%d wavefront dependency violations", res.Violations)
		}
		if res.TaskEvents == 0 {
			return fmt.Errorf("no task events traced")
		}
		// Overlap on anti-diagonals requires tasks actually running
		// concurrently; the dependency-correctness claims above do not.
		if res.WaveConcurrency < 2 && runtime.NumCPU() >= 4 {
			return fmt.Errorf("wave concurrency = %d, expected overlap on anti-diagonals", res.WaveConcurrency)
		}
		if res.SerialConcurrency != 1 {
			return fmt.Errorf("overconstrained concurrency = %d, expected fully serialized execution",
				res.SerialConcurrency)
		}
		return nil
	})
}

func TestFig13LazyMPILife(t *testing.T) {
	p, _ := quickParams(t)
	res, err := Fig13(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EachRankWorked {
		t.Error("some rank computed nothing; bands not distributed")
	}
	// The sparse dataset must keep most of the board uncomputed...
	if res.ComputedFraction > 0.7 {
		t.Errorf("computed fraction = %.2f, expected lazy evaluation to skip most tiles",
			res.ComputedFraction)
	}
	// ...and the computed tiles must hug the diagonals.
	if res.DiagonalHitRate < 0.9 {
		t.Errorf("diagonal hit rate = %.2f, expected activity near the diagonals only",
			res.DiagonalHitRate)
	}
}

func TestAllRunsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite in -short mode")
	}
	var log bytes.Buffer
	if err := All(Params{Quick: true, OutDir: t.TempDir(), Log: &log}); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"[perf]", "[fig3]", "[fig4]", "[fig6]", "[fig7]",
		"[fig8]", "[fig9a]", "[fig9b]", "[fig10]", "[coverage]", "[fig12]", "[fig13]"} {
		if !strings.Contains(log.String(), marker) {
			t.Errorf("missing %s in the easybench report", marker)
		}
	}
}
