// Package figures regenerates every figure of the paper's evaluation
// (Section III plus the §II-C performance-mode example). Each FigN function
// runs the corresponding workload, prints the same quantities the paper
// reports, optionally writes the graphical artifact (tiling windows, heat
// maps, Gantt charts, speedup graphs) under an output directory, and
// returns a structured result so the benchmark suite can assert the
// paper's qualitative claims (who wins, by roughly what factor).
//
// The experiment index in DESIGN.md §4 maps each figure to these
// functions.
package figures

import (
	"fmt"
	"io"
	"time"

	"easypap/internal/core"
	_ "easypap/internal/kernels" // register kernels
	"easypap/internal/monitor"
	"easypap/internal/sched"
)

// Params tunes workload sizes: Quick shrinks the images so the whole suite
// runs in seconds (tests/CI); the defaults match the paper's setups.
type Params struct {
	Quick  bool
	OutDir string    // where to write artifacts ("" = no artifacts)
	Log    io.Writer // progress/report output (nil = silent)
}

func (p Params) logf(format string, args ...any) {
	if p.Log != nil {
		fmt.Fprintf(p.Log, format, args...)
	}
}

// dim returns full when not in quick mode, otherwise quick.
func (p Params) dim(full, quick int) int {
	if p.Quick {
		return quick
	}
	return full
}

// PerfResult is the §II-C performance-mode example.
type PerfResult struct {
	Result core.Result
}

// PerfMode reproduces the paper's performance-mode run:
//
//	easypap --kernel mandel --variant omp_tiled --tile-size 16 \
//	        --iterations 50 --no-display
//	50 iterations completed in 579 ms
//
// The absolute time depends on the host; the deliverable is the workflow
// and the report line.
func PerfMode(p Params) (PerfResult, error) {
	dim := p.dim(2048, 256)
	iters := 50
	if p.Quick {
		iters = 5
	}
	out, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
		TileW: 16, TileH: 16, Iterations: iters, NoDisplay: true,
	})
	if err != nil {
		return PerfResult{}, err
	}
	p.logf("[perf] easypap --kernel mandel --variant omp_tiled --tile-size 16 --iterations %d --no-display\n", iters)
	p.logf("[perf] %s\n", out.Result.String())
	return PerfResult{Result: out.Result}, nil
}

// Fig3Result captures the static-schedule load imbalance of Fig. 3.
type Fig3Result struct {
	Loads     []float64 // per-CPU load of the last iteration
	Imbalance float64   // max/mean busy ratio
	Idleness  float64
}

// Fig3 runs mandel omp_tiled under schedule(static) with monitoring and
// reports the per-CPU loads: the paper observes a clear imbalance because
// the tiles covering the Mandelbrot set cost far more than the rest.
func Fig3(p Params) (Fig3Result, error) {
	dim := p.dim(1024, 256)
	out, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
		TileW: 16, TileH: 16, Iterations: 2, NoDisplay: true,
		Monitoring: true, Threads: 4, Schedule: sched.StaticPolicy,
	})
	if err != nil {
		return Fig3Result{}, err
	}
	iters := out.Monitors[0].Iterations()
	last := iters[len(iters)-1]
	res := Fig3Result{Loads: last.Loads, Imbalance: last.Imbalance(), Idleness: last.Idleness}
	p.logf("[fig3] mandel omp_tiled schedule=static: per-CPU loads %v\n", fmtLoads(last.Loads))
	p.logf("[fig3] imbalance (max/mean) = %.2f, idleness = %.1f%%\n", res.Imbalance, res.Idleness*100)
	if p.OutDir != "" {
		tiling := monitor.TilingImage(last, dim, 512)
		if err := tiling.SavePNG(p.OutDir + "/fig3_tiling.png"); err != nil {
			return res, err
		}
		activity := monitor.ActivityImage(last, out.Monitors[0].IdlenessHistory(), 512)
		if err := activity.SavePNG(p.OutDir + "/fig3_activity.png"); err != nil {
			return res, err
		}
		p.logf("[fig3] wrote %s/fig3_{tiling,activity}.png\n", p.OutDir)
	}
	return res, nil
}

// Fig4Result characterizes one scheduling policy's assignment pattern.
type Fig4Result struct {
	Schedule   string
	Contiguous bool        // static: one contiguous block per worker
	RunHist    map[int]int // run-length histogram of same-owner runs
	OwnerGrid  [][]int
}

// Fig4 reproduces the four tiling-window snapshots of Fig. 4: the same
// kernel under static, dynamic,2, nonmonotonic:dynamic and guided, with
// the tile->thread assignment captured per policy.
func Fig4(p Params) (map[string]Fig4Result, error) {
	dim := p.dim(1024, 256)
	policies := []sched.Policy{
		sched.StaticPolicy,
		sched.DynamicPolicy(2),
		sched.NonmonotonicPolicy,
		sched.GuidedPolicy,
	}
	results := make(map[string]Fig4Result, len(policies))
	for _, pol := range policies {
		out, err := core.Run(core.Config{
			Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
			TileW: 16, TileH: 16, Iterations: 1, NoDisplay: true,
			Monitoring: true, Threads: 4, Schedule: pol,
		})
		if err != nil {
			return nil, err
		}
		iters := out.Monitors[0].Iterations()
		last := iters[len(iters)-1]
		tiles := dim / 16
		grid := monitor.OwnerGrid(last, dim, tiles, tiles, 4)
		res := Fig4Result{
			Schedule:   pol.String(),
			Contiguous: monitor.ContiguousBlocks(grid),
			RunHist:    monitor.RunLengthHistogram(grid),
			OwnerGrid:  grid,
		}
		results[pol.String()] = res
		p.logf("[fig4] schedule=%-22s contiguous-blocks=%-5v\n", pol, res.Contiguous)
		if p.OutDir != "" {
			img := monitor.TilingImage(last, dim, 512)
			name := fmt.Sprintf("%s/fig4_%s.png", p.OutDir, sanitize(pol.String()))
			if err := img.SavePNG(name); err != nil {
				return nil, err
			}
		}
	}
	if p.OutDir != "" {
		p.logf("[fig4] wrote %s/fig4_<schedule>.png\n", p.OutDir)
	}
	return results, nil
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == ':' || c == ',' {
			out[i] = '_'
		}
	}
	return string(out)
}

func fmtLoads(loads []float64) string {
	s := "["
	for i, l := range loads {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.0f%%", l*100)
	}
	return s + "]"
}

// Fig8Result captures the two dynamic-scheduling patterns of Fig. 8.
type Fig8Result struct {
	// StripeRows are rows fully owned by at most two alternating workers
	// (the strict form of Pattern 1).
	StripeRows []int
	// LongRunRows are rows containing a same-owner run of at least a
	// quarter of the row — the visible "stripes" of Pattern 1. Under
	// dynamic,1 with uniformly busy workers such runs are vanishingly
	// improbable; they appear exactly because one or two threads sweep the
	// cheap rows while the others chew on the in-set tiles.
	LongRunRows []int
	CyclicScore float64 // adjacent-owner-differs ratio in the heavy band (Pattern 2)
	OwnerGrid   [][]int
}

// Fig8 runs mandel with dynamic scheduling of small tiles. The cheap rows
// (far from the set) are swallowed by one or two threads -> same-color
// stripes; the uniformly heavy band (inside the set) turns the dynamic
// distribution into a quasi-cyclic one.
func Fig8(p Params) (Fig8Result, error) {
	dim := p.dim(512, 256)
	tile := 8
	out, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
		TileW: tile, TileH: tile, Iterations: 1, NoDisplay: true,
		Monitoring: true, Threads: 4, Schedule: sched.DynamicPolicy(1),
	})
	if err != nil {
		return Fig8Result{}, err
	}
	iters := out.Monitors[0].Iterations()
	last := iters[len(iters)-1]
	tiles := dim / tile
	grid := monitor.OwnerGrid(last, dim, tiles, tiles, 4)

	// Locate the heaviest horizontal band (the in-set area) via the heat
	// grid, and measure its cyclicity.
	heat := monitor.HeatGrid(last, dim, tiles, tiles)
	bestRow, bestCost := 0, int64(-1)
	for y := range heat {
		var cost int64
		for _, d := range heat[y] {
			cost += d
		}
		if cost > bestCost {
			bestRow, bestCost = y, cost
		}
	}
	lo := max(bestRow-2, 0)
	hi := min(bestRow+3, tiles)
	res := Fig8Result{
		StripeRows:  monitor.StripeRows(grid),
		CyclicScore: monitor.CyclicScore(grid, lo, hi),
		OwnerGrid:   grid,
	}
	runs := monitor.RowRuns(grid)
	for y, rowRuns := range runs {
		for _, r := range rowRuns {
			if r >= tiles/4 {
				res.LongRunRows = append(res.LongRunRows, y)
				break
			}
		}
	}
	p.logf("[fig8] mandel dynamic,1 tiles=%dx%d: %d strict stripe rows, %d long-run rows (pattern 1), cyclic score %.2f in heavy band rows %d..%d (pattern 2)\n",
		tile, tile, len(res.StripeRows), len(res.LongRunRows), res.CyclicScore, lo, hi-1)
	if p.OutDir != "" {
		img := monitor.TilingImage(last, dim, 512)
		if err := img.SavePNG(p.OutDir + "/fig8_dynamic_small_tiles.png"); err != nil {
			return res, err
		}
		p.logf("[fig8] wrote %s/fig8_dynamic_small_tiles.png\n", p.OutDir)
	}
	return res, nil
}

// Fig9Result captures the heat-map observations of Fig. 9.
type Fig9Result struct {
	// Mandel: mean tile duration inside vs outside the set area.
	MandelMaxOverMin float64
	// Blur: mean duration of border vs inner tiles.
	BlurBorderMean time.Duration
	BlurInnerMean  time.Duration
	BlurRatio      float64
}

// Fig9 renders the heat maps: (a) mandel's heat map redraws the shape of
// the set (in-set tiles are the slowest); (b) the optimized blur's border
// tiles take longer than inner tiles.
func Fig9(p Params) (Fig9Result, error) {
	var res Fig9Result
	dim := p.dim(512, 256)

	// (a) mandel heat map.
	outM, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
		TileW: 16, TileH: 16, Iterations: 1, NoDisplay: true,
		Monitoring: true, HeatMode: true, Threads: 4,
		Schedule: sched.DynamicPolicy(2),
	})
	if err != nil {
		return res, err
	}
	lastM := outM.Monitors[0].Iterations()[0]
	var minD, maxD time.Duration
	for i, t := range lastM.Tiles {
		d := t.Duration()
		if i == 0 || d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD > 0 {
		res.MandelMaxOverMin = float64(maxD) / float64(minD)
	}
	p.logf("[fig9a] mandel tile durations: min=%v max=%v (ratio %.0fx) — the set's shape appears in the heat map\n",
		minD, maxD, res.MandelMaxOverMin)

	// (b) blur border vs inner tiles (optimized variant).
	outB, err := core.Run(core.Config{
		Kernel: "blur", Variant: "omp_tiled_opt", Dim: dim,
		TileW: 16, TileH: 16, Iterations: 2, NoDisplay: true,
		Monitoring: true, HeatMode: true, Threads: 4,
	})
	if err != nil {
		return res, err
	}
	itersB := outB.Monitors[0].Iterations()
	lastB := itersB[len(itersB)-1]
	grid, err := sched.NewTileGrid(dim, 16, 16)
	if err != nil {
		return res, err
	}
	var borderSum, innerSum time.Duration
	var borderN, innerN int
	for _, t := range lastB.Tiles {
		tile := grid.TileAt(t.X, t.Y)
		if grid.IsBorder(tile) {
			borderSum += t.Duration()
			borderN++
		} else {
			innerSum += t.Duration()
			innerN++
		}
	}
	if borderN > 0 {
		res.BlurBorderMean = borderSum / time.Duration(borderN)
	}
	if innerN > 0 {
		res.BlurInnerMean = innerSum / time.Duration(innerN)
	}
	if res.BlurInnerMean > 0 {
		res.BlurRatio = float64(res.BlurBorderMean) / float64(res.BlurInnerMean)
	}
	p.logf("[fig9b] blur opt: border tiles mean %v, inner tiles mean %v (border/inner = %.1fx)\n",
		res.BlurBorderMean, res.BlurInnerMean, res.BlurRatio)

	if p.OutDir != "" {
		if err := monitor.HeatImage(lastM, dim, 512).SavePNG(p.OutDir + "/fig9a_mandel_heat.png"); err != nil {
			return res, err
		}
		if err := monitor.HeatImage(lastB, dim, 512).SavePNG(p.OutDir + "/fig9b_blur_heat.png"); err != nil {
			return res, err
		}
		p.logf("[fig9] wrote %s/fig9{a_mandel,b_blur}_heat.png\n", p.OutDir)
	}
	return res, nil
}
