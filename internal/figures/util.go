package figures

import (
	"fmt"
	"os"
	"path/filepath"
)

// writeBytes writes an artifact file, creating parent directories.
func writeBytes(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("figures: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// All runs every figure in order and returns the first error. It is the
// body of cmd/easybench.
func All(p Params) error {
	if _, err := PerfMode(p); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	if _, err := Fig3(p); err != nil {
		return fmt.Errorf("fig3: %w", err)
	}
	if _, err := Fig4(p); err != nil {
		return fmt.Errorf("fig4: %w", err)
	}
	if _, err := Fig6(p); err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	if _, err := Fig7(p); err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	if _, err := Fig8(p); err != nil {
		return fmt.Errorf("fig8: %w", err)
	}
	if _, err := Fig9(p); err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	if _, err := Fig10(p); err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	if _, err := CoverageStudy(p); err != nil {
		return fmt.Errorf("coverage: %w", err)
	}
	if _, err := Fig12(p); err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	if _, err := Fig13(p); err != nil {
		return fmt.Errorf("fig13: %w", err)
	}
	return nil
}
