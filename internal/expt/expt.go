// Package expt is the experiment automation layer — the Go equivalent of
// EASYPAP's expTools Python module (paper Fig. 5). A Sweep describes
// parameter ranges (threads, schedules, tile sizes, variants, ...); Execute
// runs the cartesian product, each combination `Runs` times, in performance
// mode, and appends every result to a CSV file that easyplot later filters
// and groups.
package expt

import (
	"fmt"
	"io"

	"easypap/internal/core"
	"easypap/internal/sched"
)

// Sweep is a parameter space to explore. Nil/empty dimensions inherit the
// corresponding Base field, so only the axes being studied need to be
// listed — mirroring the option-dictionary style of the Python scripts.
type Sweep struct {
	// Base supplies every parameter not swept over. NoDisplay is forced.
	Base core.Config

	Variants  []string
	Dims      []int
	Grains    []int // square tile sizes (the --grain axis of Fig. 5/6)
	Threads   []int
	Schedules []sched.Policy
	Arguments []string

	// Runs repeats every combination (default 1). All rows are recorded;
	// aggregation (min/mean) happens at plot time, as with expTools.
	Runs int

	// CSVPath, when set, appends every result row (paper §II-C).
	CSVPath string

	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	// Remote, when non-nil, executes every run through this backend
	// instead of in-process — a serve/client.Client pointed at one
	// easypapd daemon, or a serve/client.Multi over a whole cluster
	// (hash-aware routing sends each combination to the node whose
	// result cache owns it, and a node dying mid-sweep fails over to
	// the next ring replica). Either way the sweep picks up job
	// queueing, warm-pool reuse and result caching — repeated
	// combinations come back instantly. The in-process path remains
	// the default.
	Remote Runner
}

// Runner executes one configuration and returns its result. It is the
// multi-backend seam of the experiment layer: core.Run behind a trivial
// adapter is the local backend, serve/client.Client is the remote one.
type Runner interface {
	RunConfig(cfg core.Config) (core.Result, error)
}

// orDefault returns vals, or the single fallback when vals is empty.
func orDefault[T any](vals []T, fallback T) []T {
	if len(vals) == 0 {
		return []T{fallback}
	}
	return vals
}

// Size returns the number of runs Execute will perform.
func (s *Sweep) Size() int {
	runs := max(s.Runs, 1)
	return len(orDefault(s.Variants, s.Base.Variant)) *
		len(orDefault(s.Dims, s.Base.Dim)) *
		len(orDefault(s.Grains, s.Base.TileW)) *
		len(orDefault(s.Threads, s.Base.Threads)) *
		len(orDefault(s.Schedules, s.Base.Schedule)) *
		len(orDefault(s.Arguments, s.Base.Arg)) * runs
}

// Execute runs the sweep and returns every result in execution order.
func (s *Sweep) Execute() ([]core.Result, error) {
	runs := max(s.Runs, 1)
	var results []core.Result
	for _, variant := range orDefault(s.Variants, s.Base.Variant) {
		for _, dim := range orDefault(s.Dims, s.Base.Dim) {
			for _, grain := range orDefault(s.Grains, s.Base.TileW) {
				for _, threads := range orDefault(s.Threads, s.Base.Threads) {
					for _, pol := range orDefault(s.Schedules, s.Base.Schedule) {
						for _, arg := range orDefault(s.Arguments, s.Base.Arg) {
							for run := 0; run < runs; run++ {
								cfg := s.Base
								cfg.Variant = variant
								cfg.Dim = dim
								cfg.TileW, cfg.TileH = grain, grain
								cfg.Threads = threads
								cfg.Schedule = pol
								cfg.Arg = arg
								cfg.NoDisplay = true
								res, err := s.runOne(cfg)
								if err != nil {
									return results, fmt.Errorf("expt: %s/%s dim=%d grain=%d threads=%d %v: %w",
										cfg.Kernel, variant, dim, grain, threads, pol, err)
								}
								results = append(results, res)
								if s.CSVPath != "" {
									if err := core.AppendCSV(s.CSVPath, res); err != nil {
										return results, err
									}
								}
								if s.Progress != nil {
									fmt.Fprintf(s.Progress, "%s/%s dim=%d grain=%d threads=%d sched=%v run=%d: %v\n",
										cfg.Kernel, variant, dim, grain, threads, pol, run, res.WallTime)
								}
							}
						}
					}
				}
			}
		}
	}
	return results, nil
}

// runOne executes a single combination on the selected backend.
func (s *Sweep) runOne(cfg core.Config) (core.Result, error) {
	if s.Remote != nil {
		res, err := s.Remote.RunConfig(cfg)
		if err != nil {
			return res, err
		}
		// A daemon with checkpointing on may have resumed this run from a
		// stored snapshot: WallTime then covers only the iterations
		// computed after the resume point, not the configured depth. A
		// benchmark row must stay self-consistent — plots divide time by
		// iterations — so the row records exactly what the wall clock
		// measured: the computed suffix.
		if res.ResumedFrom > 0 {
			res.Iterations -= res.ResumedFrom
			res.ResumedFrom = 0
		}
		return res, nil
	}
	out, err := core.Run(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return out.Result, nil
}

// Best returns, for each unique configuration, the minimum wall time over
// its repeated runs — the aggregation easyplot applies by default.
func Best(results []core.Result) []core.Result {
	type key struct {
		variant  string
		dim      int
		grain    int
		threads  int
		schedule string
		arg      string
	}
	best := make(map[key]core.Result)
	var order []key
	for _, r := range results {
		k := key{r.Config.Variant, r.Config.Dim, r.Config.TileW,
			r.Config.Threads, r.Config.Schedule.String(), r.Config.Arg}
		if prev, ok := best[k]; !ok {
			best[k] = r
			order = append(order, k)
		} else if r.WallTime < prev.WallTime {
			best[k] = r
		}
	}
	out := make([]core.Result, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}
