package expt

// The Remote backend: a sweep fans its runs out to an easypapd service
// instead of executing in-process, picking up the daemon's result cache
// for repeated combinations.

import (
	"net/http/httptest"
	"testing"

	"easypap/internal/core"
	"easypap/internal/serve"
	"easypap/internal/serve/client"
)

func TestSweepRemoteBackend(t *testing.T) {
	mgr := serve.NewManager(serve.Options{Workers: 2, QueueDepth: 32})
	ts := httptest.NewServer(serve.NewHandler(mgr))
	defer func() {
		ts.Close()
		mgr.Close()
	}()

	s := &Sweep{
		Base: core.Config{Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 16,
			Iterations: 2, Threads: 1},
		Grains: []int{8, 16},
		Runs:   2, // repeats hit the daemon's result cache
		Remote: client.New(ts.URL),
	}
	if got, want := s.Size(), 4; got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
	results, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		if r.Iterations != 2 {
			t.Errorf("result %d: %d iterations, want 2", i, r.Iterations)
		}
		if r.WallTime <= 0 {
			t.Errorf("result %d: wall time %v", i, r.WallTime)
		}
	}

	stats := mgr.Stats()
	// 2 unique combinations computed, 2 repeats served from cache.
	if stats.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (one per repeated combination)", stats.CacheHits)
	}
	if ks := stats.Kernels["mandel"]; ks.Jobs != 2 {
		t.Errorf("computed jobs = %d, want 2", ks.Jobs)
	}
}

// resumedRunner fakes a checkpointing daemon: every run reports it was
// restored from a snapshot 10 iterations short of the requested depth.
type resumedRunner struct{}

func (resumedRunner) RunConfig(cfg core.Config) (core.Result, error) {
	return core.Result{
		Config: cfg, WallTime: 1000, Iterations: cfg.Iterations,
		ResumedFrom: cfg.Iterations - 10,
	}, nil
}

// TestSweepNormalizesResumedRows pins the benchmark-honesty rule: when
// the remote daemon resumes a run from a checkpoint, its wall clock
// covers only the computed suffix, so the recorded row must claim only
// those iterations — otherwise every derived speed silently inflates.
func TestSweepNormalizesResumedRows(t *testing.T) {
	s := &Sweep{
		Base: core.Config{Kernel: "life", Variant: "seq", Dim: 64, TileW: 8,
			Iterations: 50, Threads: 1},
		Remote: resumedRunner{},
	}
	results, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if r := results[0]; r.Iterations != 10 || r.ResumedFrom != 0 {
		t.Fatalf("resumed row not normalized to the measured suffix: %+v", r)
	}
}
