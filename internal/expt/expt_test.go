package expt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"easypap/internal/core"
	_ "easypap/internal/kernels" // register kernels
	"easypap/internal/plot"
	"easypap/internal/sched"
)

func TestSweepSize(t *testing.T) {
	s := &Sweep{
		Base:      core.Config{Kernel: "invert", Variant: "seq", Dim: 64, TileW: 16, Threads: 1},
		Variants:  []string{"seq", "omp_tiled"},
		Threads:   []int{1, 2, 4},
		Schedules: []sched.Policy{sched.StaticPolicy, sched.DynamicPolicy(2)},
		Runs:      3,
	}
	if got := s.Size(); got != 2*3*2*3 {
		t.Errorf("Size = %d, want 36", got)
	}
}

func TestSweepExecute(t *testing.T) {
	var progress bytes.Buffer
	csvPath := filepath.Join(t.TempDir(), "perf.csv")
	s := &Sweep{
		Base: core.Config{Kernel: "invert", Dim: 64, TileW: 16, TileH: 16,
			Iterations: 2, Label: "test-machine"},
		Variants: []string{"seq", "omp_tiled"},
		Threads:  []int{1, 2},
		Runs:     2,
		CSVPath:  csvPath,
		Progress: &progress,
	}
	results, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*2*2 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	if !strings.Contains(progress.String(), "invert/seq") {
		t.Error("no progress output")
	}
	// The CSV must be loadable by the plot package and contain all rows.
	tab, err := plot.Load(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Errorf("CSV rows = %d, want 8", len(tab.Rows))
	}
	if tab.Rows[0]["machine"] != "test-machine" {
		t.Errorf("machine column = %q", tab.Rows[0]["machine"])
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	s := &Sweep{
		Base:     core.Config{Kernel: "no-such-kernel", Dim: 64},
		Variants: []string{"seq"},
	}
	if _, err := s.Execute(); err == nil {
		t.Error("bogus kernel accepted")
	}
}

func TestBestAggregation(t *testing.T) {
	mk := func(threads int, us int64) core.Result {
		return core.Result{
			Config:   core.Config{Variant: "omp", Dim: 64, TileW: 16, Threads: threads},
			WallTime: time.Duration(us),
		}
	}
	results := []core.Result{
		mk(2, 5000), mk(2, 4000), mk(2, 4500), // three runs at 2 threads
		mk(4, 3000), mk(4, 2500),
	}
	best := Best(results)
	if len(best) != 2 {
		t.Fatalf("best groups = %d, want 2", len(best))
	}
	if best[0].WallTime != 4000 || best[1].WallTime != 2500 {
		t.Errorf("best times = %v, %v", best[0].WallTime, best[1].WallTime)
	}
	// Order follows first appearance.
	if best[0].Config.Threads != 2 || best[1].Config.Threads != 4 {
		t.Error("best order not preserved")
	}
}

// TestEndToEndSweepPlot is the full Fig. 5 -> Fig. 6 workflow in miniature:
// sweep, CSV, load, filter, speedup graph.
func TestEndToEndSweepPlot(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "perf.csv")
	s := &Sweep{
		Base: core.Config{Kernel: "mandel", Dim: 64, TileW: 8, TileH: 8,
			Iterations: 1, Label: "ci"},
		Variants:  []string{"seq", "omp_tiled"},
		Threads:   []int{1, 2, 4},
		Schedules: []sched.Policy{sched.StaticPolicy, sched.DynamicPolicy(2)},
		CSVPath:   csvPath,
	}
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	tab, err := plot.Load(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plot.Build(tab.Filter(map[string]string{"kernel": "mandel"}),
		plot.Options{XCol: "threads", Speedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Panels) != 1 {
		t.Fatalf("panels = %d", len(g.Panels))
	}
	if len(g.Panels[0].Series) != 2 { // static and dynamic,2
		t.Errorf("series = %d, want 2", len(g.Panels[0].Series))
	}
	svg := g.RenderSVG(0, 0)
	if !strings.Contains(svg, "speedup") {
		t.Error("speedup graph not rendered")
	}
}
