// Connected components with task dependencies: the paper's §III-C
// assignment (Figs. 11-12).
//
// Each iteration propagates component labels in two wavefronts (down-right
// then up-left); tiles become OpenMP-style tasks whose dependencies
// enforce the propagation order. The example runs the correct wavefront
// version and the classic over-constrained student mistake, records
// traces, and shows how EASYVIEW distinguishes them: the wave overlaps
// independent anti-diagonal tiles, the mistake serializes everything.
//
//	go run ./examples/cc_tasks
package main

import (
	"fmt"
	"log"

	"easypap/internal/core"
	"easypap/internal/ezview"
	"easypap/internal/kernels"
)

func main() {
	const dim, tile = 512, 64

	run := func(variant string) *core.RunOutput {
		out, err := core.Run(core.Config{
			Kernel: "cc", Variant: variant, Dim: dim,
			TileW: tile, TileH: tile, Iterations: 100, // converges earlier
			NoDisplay: true, TracePath: "out/cc_" + variant + ".evt",
			Threads: 4, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cc/%-21s: %s\n", variant, out.Result)
		return out
	}

	seq := run("seq")
	wave := run("task")
	serial := run("task_overconstrained")

	if n := seq.Final.DiffCount(wave.Final); n != 0 {
		log.Fatalf("task labeling differs from seq on %d pixels", n)
	}
	if n := seq.Final.DiffCount(serial.Final); n != 0 {
		log.Fatalf("overconstrained labeling differs from seq on %d pixels", n)
	}
	fmt.Printf("all variants agree; %d connected components found ✓\n\n",
		kernels.CCLabelCount(seq.Final))

	// The EASYVIEW analysis: dependency order and concurrency.
	vWave := ezview.New(wave.Trace)
	violations := 0
	for iter := 1; iter <= wave.Trace.Iterations(); iter++ {
		violations += vWave.WavefrontOrder(iter)
	}
	fmt.Printf("wavefront dependency violations: %d\n", violations)
	fmt.Printf("max task concurrency: wave=%d, overconstrained=%d\n",
		vWave.MaxConcurrency(1, wave.Trace.Iterations()),
		ezview.New(serial.Trace).MaxConcurrency(1, serial.Trace.Iterations()))

	if err := vWave.SaveGanttSVG("out/cc_wave_gantt.svg",
		ezview.GanttOptions{IterLo: 1, IterHi: 1, Caption: "cc task wavefront, iteration 1 (Fig. 12)"}); err != nil {
		log.Fatal(err)
	}
	if err := ezview.New(serial.Trace).SaveGanttSVG("out/cc_serial_gantt.svg",
		ezview.GanttOptions{IterLo: 1, IterHi: 1, Caption: "over-constrained tasks: fully serialized"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Gantt charts saved to out/cc_{wave,serial}_gantt.svg")
	if err := seq.Final.SavePNG("out/cc_components.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("labeled components saved to out/cc_components.png")
}
