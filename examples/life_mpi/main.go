// MPI + OpenMP Game of Life: the paper's §III-D capstone assignment
// (Fig. 13).
//
// The board is split into horizontal bands across simulated MPI processes;
// each process runs a lazy tiled computation with its own worker pool,
// exchanges ghost-cell rows and per-tile steadiness meta-information with
// its neighbours every iteration, and votes on global convergence. The
// sparse dataset — gliders marching along the diagonals — lets the
// monitoring windows show that only tiles near the diagonals are computed.
//
//	go run ./examples/life_mpi
package main

import (
	"fmt"
	"log"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/monitor"
	"easypap/internal/sched"
)

func main() {
	const dim, iterations, tile = 512, 10, 8
	const ranks, threads = 2, 4

	// Reference: sequential life on the same dataset.
	seq, err := core.Run(core.Config{
		Kernel: "life", Variant: "seq", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iterations,
		NoDisplay: true, Arg: "diag",
	})
	if err != nil {
		log.Fatal(err)
	}

	// easypap --kernel life --variant mpi_omp --mpirun "-np 2"
	// --monitoring --debug M
	mpi, err := core.Run(core.Config{
		Kernel: "life", Variant: "mpi_omp", Dim: dim,
		TileW: tile, TileH: tile, Iterations: iterations,
		NoDisplay: true, Monitoring: true, Threads: threads,
		MPIRanks: ranks, Arg: "diag", Debug: "M",
		Schedule: sched.DynamicPolicy(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("life/seq    : %s\n", seq.Result)
	fmt.Printf("life/mpi_omp: %s (%d processes x %d threads)\n",
		mpi.Result, ranks, threads)

	if n := seq.Final.DiffCount(mpi.Final); n != 0 {
		log.Fatalf("distributed life differs from seq on %d cells", n)
	}
	fmt.Println("distributed board matches the sequential one ✓")

	// Per-process monitoring: which tiles did each rank compute? (the
	// --debug M windows of Fig. 13)
	totalTiles := (dim / tile) * (dim / tile)
	for rank, mon := range mpi.Monitors {
		iters := mon.Iterations()
		last := iters[len(iters)-1]
		fmt.Printf("rank %d: %d of %d tiles computed in the last iteration (%.1f%%)\n",
			rank, len(last.Tiles), totalTiles, 100*float64(len(last.Tiles))/float64(totalTiles))
		img := monitor.TilingImage(last, dim, 512)
		name := fmt.Sprintf("out/life_rank%d_tiling.png", rank)
		if err := img.SavePNG(name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("        tiling window saved to %s\n", name)
	}
	fmt.Println("\nfinal board (diagonal planers):")
	fmt.Println(mpi.Final.ASCII(72))
}
