// Scheduling policies under the tiling window: the paper's Fig. 4.
//
// The same mandel iteration is run under the four OpenMP scheduling
// policies; for each one the example renders the tiling window (tile ->
// thread assignment) and prints the pattern metrics students learn to
// read: contiguous blocks for static, opportunistic mixing for dynamic,
// static-plus-stealing for nonmonotonic:dynamic, shrinking runs for
// guided.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/monitor"
	"easypap/internal/sched"
)

func main() {
	const dim, tile, threads = 1024, 16, 4
	policies := []sched.Policy{
		sched.StaticPolicy,
		sched.DynamicPolicy(2),
		sched.NonmonotonicPolicy,
		sched.GuidedPolicy,
	}

	for _, pol := range policies {
		out, err := core.Run(core.Config{
			Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
			TileW: tile, TileH: tile, Iterations: 1, NoDisplay: true,
			Monitoring: true, Threads: threads, Schedule: pol,
		})
		if err != nil {
			log.Fatal(err)
		}
		iters := out.Monitors[0].Iterations()
		last := iters[len(iters)-1]
		tiles := dim / tile
		grid := monitor.OwnerGrid(last, dim, tiles, tiles, threads)

		longest := 0
		for _, n := range monitor.RowRuns(grid) {
			for _, r := range n {
				if r > longest {
					longest = r
				}
			}
		}
		fmt.Printf("%-22s contiguous=%v longest-run=%-3d time=%v\n",
			pol, monitor.ContiguousBlocks(grid), longest, out.WallTime.Round(1e6))

		img := monitor.TilingImage(last, dim, 512)
		name := "out/sched_" + sanitize(pol.String()) + ".png"
		if err := img.SavePNG(name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%22s tiling window -> %s\n", "", name)
	}
	fmt.Println("\ncompare the four PNGs with the paper's Fig. 4a-4d")
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == ':' || c == ',' {
			out[i] = '_'
		}
	}
	return string(out)
}
