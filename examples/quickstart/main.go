// Quickstart: the paper's §II walk-through as a program.
//
// It runs the sequential mandel kernel, then the incrementally
// parallelized omp variant and the tiled omp_tiled variant, verifies that
// all three produce the same image (the visual check students perform),
// compares their performance, and saves the final frame.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"easypap/internal/core"
	_ "easypap/internal/kernels"
	"easypap/internal/sched"
)

func main() {
	const dim, iterations = 512, 5

	// easypap --kernel mandel --variant seq --size 512 --iterations 5
	// --no-display
	seq, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "seq", Dim: dim,
		TileW: 16, TileH: 16, Iterations: iterations, NoDisplay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mandel/seq       : %s\n", seq.Result)

	// The "single pragma" step of §II-A: parallelize the row loop.
	omp, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp", Dim: dim,
		TileW: 16, TileH: 16, Iterations: iterations, NoDisplay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mandel/omp       : %s (speedup %.2fx)\n",
		omp.Result, float64(seq.WallTime)/float64(omp.WallTime))

	// The Fig. 2 tiled version under a dynamic schedule.
	tiled, err := core.Run(core.Config{
		Kernel: "mandel", Variant: "omp_tiled", Dim: dim,
		TileW: 16, TileH: 16, Iterations: iterations, NoDisplay: true,
		Schedule: sched.DynamicPolicy(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mandel/omp_tiled : %s (speedup %.2fx)\n",
		tiled.Result, float64(seq.WallTime)/float64(tiled.WallTime))

	// The correctness check students do visually: all variants must
	// produce the same animation frames.
	if n := seq.Final.DiffCount(omp.Final); n != 0 {
		log.Fatalf("omp differs from seq on %d pixels", n)
	}
	if n := seq.Final.DiffCount(tiled.Final); n != 0 {
		log.Fatalf("omp_tiled differs from seq on %d pixels", n)
	}
	fmt.Println("all variants produce identical images ✓")

	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := tiled.Final.SavePNG("out/quickstart_mandel.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("final frame saved to out/quickstart_mandel.png")
	fmt.Println()
	fmt.Println(tiled.Final.ASCII(72))
}
