// Blur stencil optimization: the paper's §III-B story end to end.
//
// Students first write a tiled blur where every pixel pays boundary
// checks; the heat map reveals that only border tiles need them; splitting
// border from inner tiles (branch-free core) makes the kernel several
// times faster. This example runs both variants with tracing, prints the
// heat observations and the EASYVIEW comparison report (Fig. 10), and
// verifies bit-identical output.
//
//	go run ./examples/blur_stencil
package main

import (
	"fmt"
	"log"
	"time"

	"easypap/internal/core"
	"easypap/internal/ezview"
	_ "easypap/internal/kernels"
	"easypap/internal/sched"
)

func main() {
	const dim, iterations, tile = 1024, 5, 32

	run := func(variant string) *core.RunOutput {
		out, err := core.Run(core.Config{
			Kernel: "blur", Variant: variant, Dim: dim,
			TileW: tile, TileH: tile, Iterations: iterations,
			NoDisplay: true, Monitoring: true, HeatMode: true,
			TracePath: "out/blur_" + variant + ".evt",
			Schedule:  sched.NonmonotonicPolicy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("blur/%-14s: %s\n", variant, out.Result)
		return out
	}

	base := run("omp_tiled")
	opt := run("omp_tiled_opt")

	if n := base.Final.DiffCount(opt.Final); n != 0 {
		log.Fatalf("optimized blur differs on %d pixels", n)
	}
	fmt.Println("both variants produce identical images ✓")
	fmt.Printf("whole-kernel speedup: %.2fx\n\n",
		float64(base.WallTime)/float64(opt.WallTime))

	// Heat-map observation (Fig. 9b): border tiles vs inner tiles.
	iters := opt.Monitors[0].Iterations()
	last := iters[len(iters)-1]
	grid, err := sched.NewTileGrid(dim, tile, tile)
	if err != nil {
		log.Fatal(err)
	}
	var borderMean, innerMean time.Duration
	var borderN, innerN int
	for _, t := range last.Tiles {
		if grid.IsBorder(grid.TileAt(t.X, t.Y)) {
			borderMean += t.Duration()
			borderN++
		} else {
			innerMean += t.Duration()
			innerN++
		}
	}
	borderMean /= time.Duration(borderN)
	innerMean /= time.Duration(innerN)
	fmt.Printf("heat map: border tiles %v, inner tiles %v (%.1fx)\n",
		borderMean, innerMean, float64(borderMean)/float64(innerMean))

	// EASYVIEW trace comparison (Fig. 10).
	rep, err := ezview.CompareReport(base.Trace, opt.Trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- easyview compare out/blur_omp_tiled.evt out/blur_omp_tiled_opt.evt ---")
	fmt.Println(rep)

	// Gantt charts of both runs for visual inspection.
	if err := ezview.New(base.Trace).SaveGanttSVG("out/blur_base_gantt.svg",
		ezview.GanttOptions{Caption: "blur omp_tiled (uniform tiles)"}); err != nil {
		log.Fatal(err)
	}
	if err := ezview.New(opt.Trace).SaveGanttSVG("out/blur_opt_gantt.svg",
		ezview.GanttOptions{Caption: "blur omp_tiled_opt (border/inner split)"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Gantt charts saved to out/blur_{base,opt}_gantt.svg")
}
