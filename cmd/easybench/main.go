// Command easybench regenerates every figure of the paper's evaluation
// section in one run (see DESIGN.md §4 for the experiment index):
//
//	easybench                 # full-size workloads, artifacts under out/
//	easybench -quick          # small workloads (seconds, for CI)
//	easybench -fig fig6       # a single figure
//	easybench -out results    # choose the artifact directory
package main

import (
	"flag"
	"fmt"
	"os"

	"easypap/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all|perf|fig3|fig4|fig6|fig7|fig8|fig9|fig10|coverage|fig12|fig13")
	out := flag.String("out", "out", "artifact output directory")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	flag.Parse()

	p := figures.Params{Quick: *quick, OutDir: *out, Log: os.Stdout}
	var err error
	switch *fig {
	case "all":
		err = figures.All(p)
	case "perf":
		_, err = figures.PerfMode(p)
	case "fig3":
		_, err = figures.Fig3(p)
	case "fig4":
		_, err = figures.Fig4(p)
	case "fig6":
		_, err = figures.Fig6(p)
	case "fig7":
		_, err = figures.Fig7(p)
	case "fig8":
		_, err = figures.Fig8(p)
	case "fig9":
		_, err = figures.Fig9(p)
	case "fig10":
		_, err = figures.Fig10(p)
	case "coverage":
		_, err = figures.CoverageStudy(p)
	case "fig12":
		_, err = figures.Fig12(p)
	case "fig13":
		_, err = figures.Fig13(p)
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "easybench:", err)
		os.Exit(1)
	}
}
