// Command easyview is the trace explorer (paper §II-D): it loads trace
// files recorded with easypap --trace and exposes the interactive tool's
// analyses as subcommands:
//
//	easyview gantt    run.evt --out gantt.svg [--from 1 --to 10]
//	easyview stats    run.evt
//	easyview compare  base.evt optimized.evt
//	easyview coverage run.evt --cpu 3 --out cover.png [--thumb final.png]
//	easyview json     run.evt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"easypap/internal/ezview"
	"easypap/internal/img2d"
	"easypap/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "easyview:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: easyview <gantt|stats|compare|coverage|json> ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "gantt":
		return ganttCmd(rest, out)
	case "stats":
		return statsCmd(rest, out)
	case "compare":
		return compareCmd(rest, out)
	case "coverage":
		return coverageCmd(rest, out)
	case "json":
		return jsonCmd(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func ganttCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gantt", flag.ContinueOnError)
	outPath := fs.String("out", "gantt.svg", "output SVG path")
	from := fs.Int("from", 1, "first iteration")
	to := fs.Int("to", 0, "last iteration (0 = all)")
	width := fs.Int("width", 1200, "chart width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("gantt: need exactly one trace file")
	}
	t, err := trace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	v := ezview.New(t)
	if err := v.SaveGanttSVG(*outPath, ezview.GanttOptions{
		Width: *width, IterLo: *from, IterHi: *to,
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d events)\n", *outPath, len(t.Events))
	return nil
}

func statsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	from := fs.Int("from", 1, "first iteration")
	to := fs.Int("to", 0, "last iteration (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: need exactly one trace file")
	}
	t, err := trace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	hi := *to
	if hi == 0 {
		hi = t.Iterations()
	}
	v := ezview.New(t)
	fmt.Fprint(out, v.GanttReport(*from, hi))
	for iter := *from; iter <= hi; iter++ {
		fmt.Fprintf(out, "  iter %d imbalance (max/mean busy): %.2f\n", iter, t.LoadImbalance(iter))
	}
	return nil
}

func compareCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: need exactly two trace files")
	}
	a, err := trace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := trace.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	rep, err := ezview.CompareReport(a, b)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep)
	return nil
}

func coverageCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	cpu := fs.Int("cpu", 0, "global CPU id (rank*threads+cpu)")
	from := fs.Int("from", 1, "first iteration")
	to := fs.Int("to", 0, "last iteration (0 = all)")
	outPath := fs.String("out", "coverage.png", "output PNG path")
	thumbPath := fs.String("thumb", "", "image to overlay (default: flat gray)")
	size := fs.Int("size", 256, "output size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("coverage: need exactly one trace file")
	}
	t, err := trace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	hi := *to
	if hi == 0 {
		hi = t.Iterations()
	}
	var thumb *img2d.Image
	if *thumbPath != "" {
		thumb, err = img2d.LoadPNG(*thumbPath)
		if err != nil {
			return err
		}
	} else {
		thumb = img2d.New(max(t.Meta.Dim, 16))
		thumb.Fill(img2d.RGB(120, 120, 130))
	}
	v := ezview.New(t)
	cov, err := v.CoverageMap(thumb, *cpu, *from, hi, *size)
	if err != nil {
		return err
	}
	if err := cov.SavePNG(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (CPU %d, iterations %d..%d, locality %.3f)\n",
		*outPath, *cpu, *from, hi, v.CoverageLocality(*cpu, *from, hi))
	return nil
}

func jsonCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("json", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("json: need exactly one trace file")
	}
	t, err := trace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	return t.WriteJSON(out)
}
