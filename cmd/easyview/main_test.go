package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easypap/internal/trace"
)

// writeTestTrace drops a small trace file on disk.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	tr := &trace.Trace{
		Meta: trace.Meta{Kernel: "mandel", Variant: "omp", Dim: 64,
			TileW: 16, TileH: 16, Threads: 2, Ranks: 1, Iterations: 2},
		Events: []trace.Event{
			{Iter: 1, CPU: 0, Start: 0, End: 100, X: 0, Y: 0, W: 16, H: 16},
			{Iter: 1, CPU: 1, Start: 10, End: 90, X: 16, Y: 0, W: 16, H: 16},
			{Iter: 2, CPU: 0, Start: 120, End: 200, X: 0, Y: 16, W: 16, H: 16},
		},
	}
	path := filepath.Join(t.TempDir(), "t.evt")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGanttSubcommand(t *testing.T) {
	tr := writeTestTrace(t)
	out := filepath.Join(t.TempDir(), "g.svg")
	var buf bytes.Buffer
	if err := run([]string{"gantt", "--out", out, tr}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("not an SVG")
	}
	if !strings.Contains(buf.String(), "3 events") {
		t.Errorf("report: %s", buf.String())
	}
}

func TestStatsSubcommand(t *testing.T) {
	tr := writeTestTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"stats", tr}, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "mandel/omp") || !strings.Contains(s, "imbalance") {
		t.Errorf("stats output: %s", s)
	}
}

func TestCompareSubcommand(t *testing.T) {
	a, b := writeTestTrace(t), writeTestTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"compare", a, b}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup A->B: 1.00x") {
		t.Errorf("compare output: %s", buf.String())
	}
}

func TestCoverageSubcommand(t *testing.T) {
	tr := writeTestTrace(t)
	out := filepath.Join(t.TempDir(), "cov.png")
	var buf bytes.Buffer
	if err := run([]string{"coverage", "--cpu", "0", "--out", out, tr}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Error("coverage PNG not written")
	}
	if !strings.Contains(buf.String(), "locality") {
		t.Errorf("coverage output: %s", buf.String())
	}
}

func TestJSONSubcommand(t *testing.T) {
	tr := writeTestTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"json", tr}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kernel": "mandel"`) {
		t.Errorf("json output: %s", buf.String()[:100])
	}
}

func TestBadInvocations(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"gantt"}, &buf); err == nil {
		t.Error("gantt without file accepted")
	}
	if err := run([]string{"stats", "/nonexistent.evt"}, &buf); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"compare", "/a.evt"}, &buf); err == nil {
		t.Error("compare with one file accepted")
	}
}
