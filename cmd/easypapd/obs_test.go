package main

// Real-process smoke tests for the observability flags: -metrics
// (default on, -metrics=false 404s the scrape) and -pprof-addr (the
// net/http/pprof side listener comes up and serves, off the service
// port).

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestObservabilityListeners(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process smoke test; skipped under -short")
	}
	bin := buildDaemon(t)
	pprofAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	d := startDaemon(t, bin, freePort(t), t.TempDir(), "-pprof-addr", pprofAddr)

	// The service port scrapes by default.
	code, body := getBody(t, d.base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "easypapd_jobs_submitted_total") {
		t.Fatalf("GET /metrics = %d, body %.120s", code, body)
	}

	// The pprof side listener serves the index and is NOT reachable
	// through the service port.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof listener on %s never came up (last err: %v)", pprofAddr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := getBody(t, d.base+"/debug/pprof/"); code == http.StatusOK {
		t.Fatal("pprof reachable on the service port; it must stay on the side listener")
	}

	// A computed job shows up in the stage histograms and the trace
	// endpoint serves its span tree.
	st, err := d.submit(core.Config{Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 16, Iterations: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = d.wait(st.ID, 10*time.Second); err != nil || st.State != serve.JobDone {
		t.Fatalf("job state=%v err=%v", st.State, err)
	}
	if _, body = getBody(t, d.base+"/metrics"); !strings.Contains(body, `easypapd_stage_ns_count{stage="compute"} 1`) {
		t.Errorf("compute stage histogram did not see the job")
	}
	var doc serve.TraceDoc
	if err := d.getJSON("/v1/trace/"+st.ID, &doc); err != nil {
		t.Fatalf("GET /v1/trace/%s: %v", st.ID, err)
	}
	if doc.TraceID == "" || len(doc.Spans) == 0 {
		t.Fatalf("trace doc %+v", doc)
	}
}

func TestMetricsDisabledFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process smoke test; skipped under -short")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, freePort(t), t.TempDir(), "-metrics=false")
	if code, _ := getBody(t, d.base+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("GET /metrics with -metrics=false = %d, want 404", code)
	}
	if code, _ := getBody(t, d.base+"/v1/stats"); code != http.StatusOK {
		t.Fatalf("/v1/stats must keep serving, got %d", code)
	}
}
