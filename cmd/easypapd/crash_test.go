package main

// The crash/restart acceptance test of the persistence layer, against a
// REAL daemon process: build easypapd, run it on a data dir, warm the
// disk cache, SIGKILL it mid-sweep (no goodbye, no flush — the crash the
// journal exists for), restart on the same dir, and assert
//
//   - the journaled in-flight jobs are re-run under their original ids,
//   - every pre-crash result is served from disk without recompute
//     (stats: disk_hits > 0, computed == 0 for the replayed set),
//   - the disk entries — result AND frames bytes — are byte-identical
//     to what the pre-crash daemon wrote.
//
// Skipped under -short: it builds a binary and kills processes, which
// is meaningful only as a non-race integration step (CI runs it in a
// dedicated job).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"easypap/internal/core"
	"easypap/internal/serve"
)

// daemonProc is one generation of the real daemon.
type daemonProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "easypapd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building easypapd: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func startDaemon(t *testing.T, bin string, port int, dataDir string, extra ...string) *daemonProc {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := append([]string{"-addr", addr, "-workers", "1", "-data-dir", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemonProc{t: t, cmd: cmd, base: "http://" + addr}
	t.Cleanup(func() { d.kill() })
	// Wait for the daemon to come up.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := http.Get(d.base + "/v1/stats"); err == nil {
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon on %s never came up", addr)
	return nil
}

// kill SIGKILLs the daemon — the crash under test, not a shutdown.
func (d *daemonProc) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Signal(syscall.SIGKILL)
		_, _ = d.cmd.Process.Wait()
	}
}

func (d *daemonProc) getJSON(path string, out any) error {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (d *daemonProc) submit(cfg core.Config) (*serve.JobStatus, error) {
	body, err := json.Marshal(serve.SubmitRequest{Config: cfg})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit returned %s", resp.Status)
	}
	var st serve.JobStatus
	return &st, json.NewDecoder(resp.Body).Decode(&st)
}

func (d *daemonProc) wait(id string, timeout time.Duration) (*serve.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st serve.JobStatus
		if err := d.getJSON("/v1/jobs/"+id, &st); err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return &st, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("job %s never finished", id)
}

func (d *daemonProc) stats(t *testing.T) serve.Stats {
	t.Helper()
	var st serve.Stats
	if err := d.getJSON("/v1/stats", &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// entryBytes reads the raw on-disk object file for a config hash (the
// layout is pinned by the store golden test).
func entryBytes(t *testing.T, dataDir, hash string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dataDir, "objects", hash[:2], hash))
	if err != nil {
		t.Fatalf("reading disk entry for %s: %v", hash, err)
	}
	return raw
}

func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process crash test; skipped under -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	port := freePort(t)

	// --- generation 1: warm the disk, crash mid-sweep ----------------
	d1 := startDaemon(t, bin, port, dataDir)

	fast := []core.Config{
		{Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 8, Iterations: 3, Threads: 1},
		{Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 16, Iterations: 3, Threads: 1},
		{Kernel: "mandel", Variant: "seq", Dim: 64, TileW: 32, Iterations: 3, Threads: 1},
	}
	hashes := make([]string, len(fast))
	for i, cfg := range fast {
		st, err := d1.submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = d1.wait(st.ID, 10*time.Second); err != nil {
			t.Fatal(err)
		} else if st.State != serve.JobDone {
			t.Fatalf("warmup job %d: %+v", i, st)
		}
		hashes[i] = st.Hash
	}
	// Wait for the write-behind spiller before crashing.
	deadline := time.Now().Add(10 * time.Second)
	for d1.stats(t).Spills < int64(len(fast)) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := d1.stats(t); got.Spills < int64(len(fast)) {
		t.Fatalf("spills=%d, want %d", got.Spills, len(fast))
	}
	preCrash := make([][]byte, len(hashes))
	for i, h := range hashes {
		preCrash[i] = entryBytes(t, dataDir, h)
	}

	// A slow job plus one queued behind it (1 worker): both will be
	// in-flight when the process dies.
	slow := core.Config{Kernel: "mandel", Variant: "seq", Dim: 256, TileW: 8, Iterations: 60, Threads: 1}
	queued := core.Config{Kernel: "mandel", Variant: "seq", Dim: 128, TileW: 8, Iterations: 10, Threads: 1}
	stSlow, err := d1.submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	stQueued, err := d1.submit(queued)
	if err != nil {
		t.Fatal(err)
	}
	// Let the slow job reach the running state, then crash.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var st serve.JobStatus
		if err := d1.getJSON("/v1/jobs/"+stSlow.ID, &st); err == nil && st.State == serve.JobRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	d1.kill()

	// --- generation 2: recover on the same data dir ------------------
	d2 := startDaemon(t, bin, port, dataDir)

	// The journaled jobs re-run under their ORIGINAL ids.
	for _, id := range []string{stSlow.ID, stQueued.ID} {
		st, err := d2.wait(id, 60*time.Second)
		if err != nil {
			t.Fatalf("recovered job %s: %v", id, err)
		}
		if st.State != serve.JobDone || !st.Recovered {
			t.Fatalf("recovered job %s: %+v", id, st)
		}
	}
	afterRecovery := d2.stats(t)
	if afterRecovery.RecoveredJobs != 2 {
		t.Fatalf("recovered_jobs=%d, want 2", afterRecovery.RecoveredJobs)
	}

	// Replay the pre-crash sweep: every config must be served from disk
	// — computed stays frozen, disk_hits counts every replay, frames
	// are byte-identical to what generation 1 wrote.
	for i, cfg := range fast {
		st, err := d2.submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			if st, err = d2.wait(st.ID, 10*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		if st.State != serve.JobDone || !st.Cached || !st.DiskHit {
			t.Fatalf("replayed config %d not served from disk: %+v", i, st)
		}
		if st.Hash != hashes[i] {
			t.Fatalf("replayed config %d hashed %s, want %s", i, st.Hash, hashes[i])
		}
		if got := entryBytes(t, dataDir, st.Hash); !bytes.Equal(got, preCrash[i]) {
			t.Fatalf("disk entry %d changed across the crash (%d vs %d bytes)", i, len(got), len(preCrash[i]))
		}
		if !strings.Contains(string(preCrash[i]), "EZFRAME final ") {
			t.Fatalf("entry %d carries no frame record", i)
		}
	}
	final := d2.stats(t)
	if final.DiskHits < int64(len(fast)) {
		t.Fatalf("disk_hits=%d, want >= %d", final.DiskHits, len(fast))
	}
	if final.Computed != afterRecovery.Computed {
		t.Fatalf("replayed set recomputed: computed went %d -> %d",
			afterRecovery.Computed, final.Computed)
	}
}

// frameTail extracts the frame records from a raw disk entry — the
// part of the entry that is a pure function of the computed image
// (the Result JSON ahead of it carries wall-clock timings, which
// legitimately differ between runs).
func frameTail(t *testing.T, raw []byte) []byte {
	t.Helper()
	i := bytes.Index(raw, []byte("EZFRAME final "))
	if i < 0 {
		t.Fatalf("disk entry carries no final frame record (%d bytes)", len(raw))
	}
	return raw[i:]
}

// TestCrashRestartResumesFromCheckpoint: with -snapshot-every the
// daemon checkpoints kernel state mid-job, so a SIGKILL'd job restarts
// from its deepest durable checkpoint instead of iteration zero — the
// restarted generation computes strictly fewer iterations than the job
// asked for, yet produces a result byte-identical to an uninterrupted
// run.
func TestCrashRestartResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process crash test; skipped under -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	port := freePort(t)

	// life is stateful (unlike mandel, whose iterations are independent),
	// so a wrong resume would visibly corrupt the final board.
	cfg := core.Config{Kernel: "life", Variant: "seq", Dim: 256, TileW: 8,
		Iterations: 4000, Threads: 1, Seed: 7}

	// --- generation 1: checkpoint mid-job, then SIGKILL ---------------
	d1 := startDaemon(t, bin, port, dataDir, "-snapshot-every", "64")
	st, err := d1.submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least two durable checkpoints, then crash while the
	// job is still running — the whole point is dying mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if d1.stats(t).SnapshotsWritten >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d1.stats(t); got.SnapshotsWritten < 2 {
		t.Fatalf("snapshots_written=%d, want >= 2 before the crash", got.SnapshotsWritten)
	}
	var cur serve.JobStatus
	if err := d1.getJSON("/v1/jobs/"+st.ID, &cur); err != nil {
		t.Fatal(err)
	}
	if cur.State.Terminal() {
		t.Fatalf("job finished before the crash (%s) — raise Iterations", cur.State)
	}
	d1.kill()

	// --- generation 2: recover, resume, finish ------------------------
	d2 := startDaemon(t, bin, port, dataDir, "-snapshot-every", "64")
	done, err := d2.wait(st.ID, 120*time.Second)
	if err != nil {
		t.Fatalf("recovered job %s: %v", st.ID, err)
	}
	if done.State != serve.JobDone || !done.Recovered {
		t.Fatalf("recovered job: %+v", done)
	}
	if done.Result == nil || done.Result.ResumedFrom <= 0 {
		t.Fatalf("recovered job did not resume from a checkpoint: %+v", done.Result)
	}
	if done.Result.Iterations != cfg.Iterations {
		t.Fatalf("recovered job reports %d iterations, want %d", done.Result.Iterations, cfg.Iterations)
	}
	stats := d2.stats(t)
	if stats.SnapshotsResumed < 1 {
		t.Fatalf("snapshots_resumed=%d, want >= 1", stats.SnapshotsResumed)
	}
	// The restarted generation computed only the suffix: the kernel
	// counter stays strictly below the job's total depth.
	if got := stats.Kernels["life"].Iterations; got <= 0 || got >= int64(cfg.Iterations) {
		t.Fatalf("generation 2 computed %d iterations, want 0 < n < %d (resume skipped the prefix)",
			got, cfg.Iterations)
	}
	// Wait for the spill so the disk entry is readable.
	deadline = time.Now().Add(10 * time.Second)
	for d2.stats(t).Spills < 1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	resumed := entryBytes(t, dataDir, done.Hash)

	// --- reference: the same config, never interrupted ----------------
	refDir := t.TempDir()
	refPort := freePort(t)
	dr := startDaemon(t, bin, refPort, refDir)
	refSt, err := dr.submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if refSt, err = dr.wait(refSt.ID, 120*time.Second); err != nil {
		t.Fatal(err)
	} else if refSt.State != serve.JobDone {
		t.Fatalf("reference run: %+v", refSt)
	}
	deadline = time.Now().Add(10 * time.Second)
	for dr.stats(t).Spills < 1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if refSt.Hash != done.Hash {
		t.Fatalf("reference hashed %s, recovered job %s", refSt.Hash, done.Hash)
	}
	ref := entryBytes(t, refDir, refSt.Hash)
	if !bytes.Equal(frameTail(t, resumed), frameTail(t, ref)) {
		t.Fatal("resumed result differs from the uninterrupted run — the checkpoint corrupted the board")
	}
}

// TestCrashRestartInterruptPolicy: with -recover interrupt the crashed
// jobs come back terminal with the typed "interrupted" status instead
// of re-running.
func TestCrashRestartInterruptPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process crash test; skipped under -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	port := freePort(t)

	d1 := startDaemon(t, bin, port, dataDir)
	slow := core.Config{Kernel: "mandel", Variant: "seq", Dim: 256, TileW: 8, Iterations: 60, Threads: 1}
	st, err := d1.submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var cur serve.JobStatus
		if err := d1.getJSON("/v1/jobs/"+st.ID, &cur); err == nil && cur.State == serve.JobRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	d1.kill()

	d2 := startDaemon(t, bin, port, dataDir, "-recover", "interrupt")
	var got serve.JobStatus
	if err := d2.getJSON("/v1/jobs/"+st.ID, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != serve.JobInterrupted || !got.Recovered {
		t.Fatalf("interrupt policy: %+v", got)
	}
	if s := d2.stats(t); s.InterruptedJobs != 1 || s.Computed != 0 {
		t.Fatalf("interrupted=%d computed=%d, want 1/0", s.InterruptedJobs, s.Computed)
	}
}
