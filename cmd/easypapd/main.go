// Command easypapd is the EASYPAP compute daemon: it serves kernel runs
// over HTTP with job queueing, admission control, warm-pool reuse, result
// caching and cancellation (see internal/serve and DESIGN.md §6).
//
//	easypapd -addr :8080
//
//	# submit a job
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"config":{"kernel":"mandel","dim":512,"iterations":10}}'
//	# poll it
//	curl -s localhost:8080/v1/jobs/j-000001
//	# cancel it
//	curl -s -X DELETE localhost:8080/v1/jobs/j-000001
//	# live frames (gfx stream records: "EZFRAME <win> <iter> <len>\n<png>")
//	curl -s localhost:8080/v1/jobs/j-000002/frames > frames.ezf
//	# service counters
//	curl -s localhost:8080/v1/stats
//
// With -self and -peers the daemon joins a cluster (DESIGN.md §8):
// submissions are routed by consistent hash of their canonical config to
// the node whose result cache owns them, any node answers for any job
// id, and a dead peer's jobs fail over to the next ring replica.
//
//	easypapd -addr :8080 -self http://hostA:8080 \
//	         -peers http://hostB:8080,http://hostC:8080
//
//	curl -s hostA:8080/v1/cluster          # membership + health
//	curl -s hostA:8080/v1/cluster/stats    # cluster-aggregated counters
//
// Membership is elastic (DESIGN.md §10): the health prober doubles as a
// SWIM-style gossip exchange, so the fleet does not need matching -peers
// lists. A new node started with -join pointing at ANY live member is
// propagated to every ring within a few probe rounds, an unreachable
// member is suspected (still routable) and only declared dead — and
// removed from the ring — after -suspect-timeout without refutation, and
// a recovering member refutes the rumor with a higher incarnation and
// rejoins on its own. With -replicate R (R >= 2, requires -data-dir)
// every completed result is pushed to the next R-1 ring successors as it
// spills to disk; reads fail over owner -> replica -> recompute, and a
// background rebalancer re-replicates after every ring change under the
// -rebalance-bps bandwidth budget, verifying CRC and content hash on
// every transfer.
//
//	easypapd -addr :8081 -self http://hostD:8081 \
//	         -join http://hostA:8080 -data-dir /var/lib/easypapd -replicate 2
//
// Distributed single-job execution (DESIGN.md §12): in cluster mode a
// submission may carry "shards": N. The entry node routes it to its ring
// owner as usual; the owner becomes the session coordinator and splits
// the grid into N horizontal row bands (clamped to the healthy member
// count and the grid's tile rows), one per node, itself included as rank
// 0. Each shard runs the kernel's mpi variant locally while a
// frontier-aware halo exchange POSTs boundary rows between neighbor
// nodes once per iteration (binary EZMSG1 frames with CRC; bit-packed
// for binary-state kernels like life; edges whose boundary tiles are
// quiet are skipped entirely). The coordinator stitches the shard bands
// into one image, so a sharded run is byte-identical to a single-node
// run and caches under the same config hash. A shard node dying mid-job
// fails the job within -halo-timeout with error_kind "shard_failed";
// clients (serve/client RunConfigSharded) resubmit unsharded.
//
//	curl -s -X POST hostA:8080/v1/jobs -d '{"config":{"kernel":"life",
//	     "variant":"mpi_omp","dim":512,"iterations":100},"shards":3}'
//	curl -s hostA:8080/metrics | grep -e halos_sent -e halos_skipped
//
// With -data-dir the daemon is durable (DESIGN.md §9): completed
// results spill to a disk-backed content-addressed cache that survives
// restarts (resubmitting a known config after a crash is a disk hit,
// not a recompute — stats report disk_hits/disk_entries), and a
// write-ahead journal re-enqueues the jobs that were queued or running
// when the process died, under their original ids. -recover interrupt
// marks them with the terminal "interrupted" status instead; sweep
// clients (serve/client) resubmit interrupted jobs automatically.
// -durability fsync upgrades commits from crash-consistent to
// power-fail durable (fsync before every journal and index commit) at
// the cost of write latency; the on-disk formats are identical.
//
//	easypapd -addr :8080 -data-dir /var/lib/easypapd \
//	         -cache-max-bytes 268435456 -recover requeue -durability fsync
//
// With -snapshot-every N (DESIGN.md §14) the daemon additionally
// checkpoints every running single-process job of a snapshot-capable
// kernel (life, fire, sandpile, asandpile) every N iterations: the
// kernel's mid-run state lands in the same content-addressed store
// under the config's iteration-free prefix hash. Any later submission
// sharing that prefix — the same config at a deeper iteration count, or
// the same job re-enqueued after a crash — resumes from the deepest
// stored checkpoint instead of recomputing the shared prefix, with
// byte-identical results. Checkpointed frames jobs survive a restart
// too (they resume; snapshot-less frames jobs stay interrupted), and
// with -replicate R checkpoints ride the same R-way replication as
// results. stats report snapshots_written/snapshots_resumed.
//
//	easypapd -addr :8080 -data-dir /var/lib/easypapd -snapshot-every 64
//
// Observability (DESIGN.md §11): every daemon exposes Prometheus-text
// metrics at GET /metrics (per-stage latency histograms, queue/cache/
// ring gauges, the /v1/stats counters) — disable with -metrics=false —
// and a per-job distributed trace at GET /v1/trace/{job}: the service
// spans (admit, queue, compute, proxy, replicate, ...) recorded by
// every node the job touched, merged into one tree. -pprof-addr starts
// a net/http/pprof side listener, kept off the service port so
// profiling cannot be reached through the public API.
//
//	easypapd -addr :8080 -pprof-addr 127.0.0.1:6060
//	curl -s localhost:8080/metrics | grep easypapd_stage_ns
//	curl -s localhost:8080/v1/trace/j-000001
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof-addr side listener (DefaultServeMux)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"easypap/internal/core"
	_ "easypap/internal/kernels" // register all predefined kernels
	"easypap/internal/serve"
	"easypap/internal/serve/cluster"
	"easypap/internal/serve/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "easypapd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("easypapd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		queue     = fs.Int("queue", 64, "submission queue depth (admission control bound)")
		workers   = fs.Int("workers", 0, "concurrent job runners (default GOMAXPROCS)")
		cacheCap  = fs.Int("cache", 128, "result cache capacity (entries)")
		idlePools = fs.Int("idle-pools", 4, "warm pools kept per thread count")
		coldPools = fs.Bool("cold-pools", false, "disable warm-pool reuse (every job builds its own pool)")
		recvTO    = fs.Duration("mpi-recv-timeout", 2*time.Second, "MPI receive watchdog for distributed jobs")
		haloTO    = fs.Duration("halo-timeout", 2*time.Second, "sharded jobs: how long a shard waits for a neighbor's halo before declaring the peer lost")
		self      = fs.String("self", "", "cluster mode: this node's advertised base URL (e.g. http://10.0.0.3:8080)")
		peers     = fs.String("peers", "", "cluster mode: comma-separated peer base URLs")
		join      = fs.String("join", "", "cluster mode: comma-separated seed URLs of any live members; gossip spreads the join to the whole fleet")
		vnodes    = fs.Int("vnodes", 0, "cluster mode: virtual ring points per node (default 64)")
		probe     = fs.Duration("probe", time.Second, "cluster mode: peer health-probe (gossip) interval")
		suspectTO = fs.Duration("suspect-timeout", 0, "cluster mode: how long a suspect member may miss gossip before it is declared dead (default 10x probe)")
		replicate = fs.Int("replicate", 0, "cluster mode: replication factor R for cached results (0 or 1 = owner only; needs -data-dir)")
		rebalBPS  = fs.Int64("rebalance-bps", 0, "cluster mode: rebalancer bandwidth budget in bytes/s (default 8 MiB/s, negative disables)")
		dataDir   = fs.String("data-dir", "", "persistence: directory for the disk result cache and job journal (empty = in-memory only)")
		cacheMax  = fs.Int64("cache-max-bytes", 0, "persistence: disk cache budget in bytes (default 256 MiB)")
		recovery  = fs.String("recover", "requeue", "persistence: fate of journaled in-flight jobs on restart (requeue|interrupt)")
		snapEvery = fs.Int("snapshot-every", 0, "persistence: checkpoint running jobs every N iterations so restarts and shared-prefix submissions resume instead of recomputing (0 = off; needs -data-dir)")
		durable   = fs.String("durability", "async", "persistence: async (crash-consistent, fast) or fsync (power-fail durable) commits")
		metricsOn = fs.Bool("metrics", true, "observability: serve Prometheus-text metrics at GET /metrics")
		pprofAddr = fs.String("pprof-addr", "", "observability: side listener for net/http/pprof (e.g. 127.0.0.1:6060; empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var fsync bool
	switch *durable {
	case "async":
	case "fsync":
		fsync = true
	default:
		return fmt.Errorf("invalid -durability %q (want async or fsync)", *durable)
	}

	var st *store.Store
	var recoverPolicy serve.RecoverPolicy
	if *dataDir != "" {
		switch serve.RecoverPolicy(*recovery) {
		case serve.RecoverRequeue, serve.RecoverInterrupt:
			recoverPolicy = serve.RecoverPolicy(*recovery)
		default:
			return fmt.Errorf("invalid -recover %q (want requeue or interrupt)", *recovery)
		}
		var err error
		st, err = store.Open(*dataDir, store.Options{MaxBytes: *cacheMax, Fsync: fsync})
		if err != nil {
			return fmt.Errorf("opening data dir: %w", err)
		}
		defer st.Close()
		log.Printf("easypapd: data dir %s (%d cached results, %d bytes; %d journaled jobs to recover)",
			*dataDir, st.Cache.Len(), st.Cache.Bytes(), len(st.Journal.Recovered()))
	}

	mgr := serve.NewManager(serve.Options{
		QueueDepth:       *queue,
		Workers:          *workers,
		CacheCapacity:    *cacheCap,
		MaxIdlePools:     *idlePools,
		DisableWarmPools: *coldPools,
		RecvTimeout:      *recvTO,
		HaloTimeout:      *haloTO,
		Store:            st,
		Recover:          recoverPolicy,
		SnapshotEvery:    *snapEvery,
	})

	handler := serve.NewHandler(mgr)
	var node *cluster.Node
	if *self != "" || *peers != "" || *join != "" {
		var peerList []string
		for _, p := range strings.Split(*peers+","+*join, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *replicate > 1 && st == nil {
			return fmt.Errorf("-replicate %d needs -data-dir (replicas live in the disk cache)", *replicate)
		}
		var err error
		node, err = cluster.NewNode(mgr, cluster.Options{
			Self:           *self,
			Peers:          peerList,
			VirtualNodes:   *vnodes,
			ProbeInterval:  *probe,
			SuspectTimeout: *suspectTO,
			Replicate:      *replicate,
			RebalanceBPS:   *rebalBPS,
		})
		if err != nil {
			mgr.Close()
			return err
		}
		handler = node.Handler()
		log.Printf("easypapd: cluster node %s (%d seed peers, replicate=%d)", node.ID(), len(peerList), *replicate)
	}

	if !*metricsOn {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				http.NotFound(w, r)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registered its handlers on DefaultServeMux at
			// import; a nil handler serves exactly that, on its own port.
			log.Printf("easypapd: pprof listening on %s", *pprofAddr)
			log.Printf("easypapd: pprof listener: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: handler}

	// Graceful shutdown: stop accepting, cancel running jobs, drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("easypapd: serving %d kernels on %s", len(core.KernelNames()), *addr)
		errc <- srv.ListenAndServe()
	}()

	stopNode := func() {
		if node != nil {
			node.Close()
		}
	}
	select {
	case err := <-errc:
		stopNode()
		mgr.Close()
		return err
	case <-ctx.Done():
		log.Printf("easypapd: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shctx)
		stopNode()
		mgr.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
