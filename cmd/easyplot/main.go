// Command easyplot turns performance-mode CSV files into speedup or time
// graphs (paper §II-C, Fig. 6). The legend is generated automatically from
// the varying parameters; constant parameters are listed above the graph:
//
//	easyplot --input perf.csv --kernel mandel --col tilew --speedup \
//	         --output fig6.svg
//
// is the equivalent of the paper's
// "easyplot --kernel mandel --col grain --speedup".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"easypap/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "easyplot:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("easyplot", flag.ContinueOnError)
	var (
		input   = fs.String("input", "perf.csv", "input CSV file (as produced by easypap --csv)")
		output  = fs.String("output", "plot.svg", "output SVG file")
		kernel  = fs.String("kernel", "", "filter: kernel name")
		variant = fs.String("variant", "", "filter: variant name")
		dim     = fs.String("dim", "", "filter: image size")
		arg     = fs.String("arg", "", "filter: kernel argument")
		xcol    = fs.String("x", "threads", "x-axis column")
		col     = fs.String("col", "", "panel column (one sub-graph per value, e.g. tilew)")
		speedup = fs.Bool("speedup", false, "plot speedup against the sequential reference")
		refTime = fs.Int64("reftime", 0, "explicit sequential reference time in µs")
		ascii   = fs.Bool("ascii", false, "also print an ASCII chart")
		width   = fs.Int("width", 0, "SVG width (0 = auto)")
		height  = fs.Int("height", 420, "SVG height")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tab, err := plot.Load(*input)
	if err != nil {
		return err
	}
	filters := map[string]string{}
	if *kernel != "" {
		filters["kernel"] = *kernel
	}
	if *variant != "" {
		filters["variant"] = *variant
	}
	if *dim != "" {
		filters["dim"] = *dim
	}
	if *arg != "" {
		filters["arg"] = *arg
	}
	tab = tab.Filter(filters)

	g, err := plot.Build(tab, plot.Options{
		XCol: *xcol, PanelCol: *col, Speedup: *speedup, RefTimeUS: *refTime,
	})
	if err != nil {
		return err
	}
	if err := g.SaveSVG(*output, *width, *height); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d panels)\n", *output, len(g.Panels))
	fmt.Fprintln(out, g.ConstantsLine())
	if *ascii {
		fmt.Fprint(out, g.ASCII(0, 0))
	}
	return nil
}
