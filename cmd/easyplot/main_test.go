package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePerfCSV(t *testing.T) string {
	t.Helper()
	content := "machine,kernel,variant,dim,tilew,tileh,threads,schedule,ranks,iterations,arg,time_us\n" +
		"m,mandel,seq,512,16,16,1,static,1,10,,400000\n" +
		"m,mandel,omp_tiled,512,16,16,2,static,1,10,,220000\n" +
		"m,mandel,omp_tiled,512,16,16,4,static,1,10,,120000\n" +
		"m,mandel,omp_tiled,512,32,32,2,static,1,10,,230000\n" +
		"m,mandel,omp_tiled,512,32,32,4,static,1,10,,130000\n"
	path := filepath.Join(t.TempDir(), "perf.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlotSpeedup(t *testing.T) {
	csv := writePerfCSV(t)
	svg := filepath.Join(t.TempDir(), "fig.svg")
	var buf bytes.Buffer
	err := run([]string{"--input", csv, "--kernel", "mandel", "--col", "tilew",
		"--speedup", "--output", svg, "--ascii"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "speedup") {
		t.Error("missing speedup axis")
	}
	if !strings.Contains(buf.String(), "2 panels") {
		t.Errorf("report: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "Parameters :") {
		t.Error("missing constants banner")
	}
}

func TestPlotTimeNoFilters(t *testing.T) {
	csv := writePerfCSV(t)
	svg := filepath.Join(t.TempDir(), "t.svg")
	var buf bytes.Buffer
	err := run([]string{"--input", csv, "--variant", "omp_tiled", "--dim", "512",
		"--output", svg}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(svg); err != nil {
		t.Error("SVG not written")
	}
}

func TestPlotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"--input", "/nonexistent.csv"}, &buf); err == nil {
		t.Error("missing CSV accepted")
	}
	csv := writePerfCSV(t)
	if err := run([]string{"--input", csv, "--kernel", "nothere"}, &buf); err == nil {
		t.Error("empty filter result accepted")
	}
}
