package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"easypap/internal/core"
)

func TestParseMPIRun(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"", 0, false},
		{"-np 2", 2, false},
		{"-n 4", 4, false},
		{"  -np   8  ", 8, false},
		{"--mca foo -np 3", 3, false},
		{"-np", 0, true},
		{"-np x", 0, true},
		{"-np -1", 0, true},
		{"nothing here", 0, true},
	}
	for _, c := range cases {
		got, err := parseMPIRun(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseMPIRun(%q) succeeded with %d", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMPIRun(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseMPIRun(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRunPerfMode(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "perf.csv")
	err := run([]string{
		"--kernel", "invert", "--variant", "omp_tiled", "--size", "64",
		"--tile-size", "16", "--iterations", "2", "--no-display",
		"--threads", "2", "--schedule", "dynamic,2", "--csv", csv,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Error("CSV not written")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"--kernel", "nope"}, os.Stdout); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("missing kernel accepted")
	}
	if err := run([]string{"--kernel", "mandel", "--schedule", "bogus"}, os.Stdout); err == nil {
		t.Error("bogus schedule accepted")
	}
	if err := run([]string{"--kernel", "mandel", "--mpirun", "-np"}, os.Stdout); err == nil {
		t.Error("bogus mpirun accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"--list"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

// TestRunListJSON: --list-json emits the same machine-readable shape as
// the daemon's GET /v1/kernels (core.KernelInfo records).
func TestRunListJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"--list-json"}, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var infos []core.KernelInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatalf("--list-json output is not valid JSON: %v\n%s", err, data)
	}
	found := map[string]core.KernelInfo{}
	for _, info := range infos {
		found[info.Name] = info
		if info.DefaultVariant == "" || len(info.Variants) == 0 {
			t.Errorf("kernel %q missing default_variant or variants", info.Name)
		}
	}
	life, ok := found["life"]
	if !ok {
		t.Fatal("life missing from --list-json")
	}
	hasLazy := false
	for _, v := range life.Variants {
		if v == "lazy" {
			hasLazy = true
		}
	}
	if !hasLazy {
		t.Errorf("life variants %v missing lazy", life.Variants)
	}
	for _, name := range []string{"fire", "sandpile", "asandpile"} {
		if _, ok := found[name]; !ok {
			t.Errorf("%s missing from --list-json", name)
		}
	}
}

func TestRunMPIVariant(t *testing.T) {
	err := run([]string{
		"--kernel", "life", "--variant", "mpi_omp", "--size", "64",
		"--tile-size", "8", "--iterations", "3", "--no-display",
		"--threads", "2", "--mpirun", "-np 2", "--arg", "diag",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}
