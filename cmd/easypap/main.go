// Command easypap is the CLI entry point of the framework, mirroring the
// original tool's interface (paper §II):
//
//	easypap --kernel mandel --variant seq --size 2048
//	easypap --kernel mandel --variant omp_tiled --tile-size 16 --monitoring
//	easypap --kernel mandel --variant omp_tiled --tile-size 16 \
//	        --iterations 50 --no-display
//	easypap --kernel mandel --variant omp --trace traces/run.evt \
//	        --no-display --iterations 10
//	easypap --kernel life --variant mpi_omp --mpirun "-np 2" --monitoring \
//	        --debug M
//
// Being headless, "display" means writing PNG frames (main view, tiling
// window, activity monitor) under --output-dir instead of opening SDL
// windows; performance mode (--no-display) is identical to the original.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"easypap/internal/core"
	_ "easypap/internal/kernels" // register all predefined kernels
	"easypap/internal/monitor"
	"easypap/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "easypap:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("easypap", flag.ContinueOnError)
	var (
		kernel     = fs.String("kernel", "", "kernel to run (see --list)")
		variant    = fs.String("variant", "", "kernel variant (default: the kernel's default)")
		size       = fs.Int("size", 0, "image size (square, default 1024)")
		tileSize   = fs.Int("tile-size", 0, "square tile size")
		grain      = fs.Int("grain", 0, "alias for --tile-size")
		tileW      = fs.Int("tile-width", 0, "tile width (overrides --tile-size)")
		tileH      = fs.Int("tile-height", 0, "tile height (overrides --tile-size)")
		iterations = fs.Int("iterations", 1, "number of iterations")
		threads    = fs.Int("threads", 0, "worker threads (default: all cores; OMP_NUM_THREADS analogue)")
		schedule   = fs.String("schedule", "", "loop schedule: static | static,k | dynamic,k | guided[,k] | nonmonotonic:dynamic (OMP_SCHEDULE analogue)")
		monitoring = fs.Bool("monitoring", false, "activate the tiling and activity windows")
		heat       = fs.Bool("heat-map", false, "tiling window brightness reflects task duration")
		tracePath  = fs.String("trace", "", "record an execution trace to this file")
		noDisplay  = fs.Bool("no-display", false, "performance mode: no frames, report wall time")
		outputDir  = fs.String("output-dir", "out", "directory for PNG frames and windows")
		frames     = fs.Int("frames", 0, "keep one frame every N iterations")
		mpirun     = fs.String("mpirun", "", `MPI launch options, e.g. "-np 2"`)
		debug      = fs.String("debug", "", "debug flags; M shows windows of every MPI process")
		arg        = fs.String("arg", "", "kernel argument (e.g. life pattern: random|diag|blinker|empty)")
		seed       = fs.Int64("seed", 0, "deterministic seed for randomized kernels")
		csvPath    = fs.String("csv", "", "append the performance result to this CSV file")
		list       = fs.Bool("list", false, "list registered kernels and variants")
		listJSON   = fs.Bool("list-json", false, "list kernels as JSON (same shape as the daemon's GET /v1/kernels)")
		asciiDump  = fs.Bool("ascii", false, "print an ASCII preview of the final image")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(core.KernelList())
	}
	if *list {
		for _, name := range core.KernelNames() {
			k, err := core.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-12s %s\n", name, k.Description)
			fmt.Fprintf(out, "             variants: %s\n", strings.Join(k.VariantNames(), ", "))
		}
		return nil
	}
	if *kernel == "" {
		return fmt.Errorf("no --kernel given (try --list)")
	}

	pol := sched.StaticPolicy
	if *schedule != "" {
		var err error
		pol, err = sched.ParsePolicy(*schedule)
		if err != nil {
			return err
		}
	}
	np, err := parseMPIRun(*mpirun)
	if err != nil {
		return err
	}
	tw, th := *tileSize, *tileSize
	if tw == 0 {
		tw, th = *grain, *grain
	}
	if *tileW > 0 {
		tw = *tileW
	}
	if *tileH > 0 {
		th = *tileH
	}

	cfg := core.Config{
		Kernel: *kernel, Variant: *variant, Dim: *size,
		TileW: tw, TileH: th,
		Iterations: *iterations, Threads: *threads, Schedule: pol,
		Monitoring: *monitoring, HeatMode: *heat, TracePath: *tracePath,
		NoDisplay: *noDisplay, OutputDir: *outputDir, FrameEvery: *frames,
		MPIRanks: np, Debug: *debug, Arg: *arg, Seed: *seed,
	}
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}

	if *noDisplay {
		fmt.Fprintln(out, res.Result.String())
	}
	if *csvPath != "" {
		if err := core.AppendCSV(*csvPath, res.Result); err != nil {
			return err
		}
	}
	if *monitoring && len(res.Monitors) > 0 && res.Monitors[0] != nil {
		iters := res.Monitors[0].Iterations()
		if len(iters) > 0 {
			fmt.Fprint(out, monitor.ASCIIReport(iters[len(iters)-1]))
		}
	}
	if *asciiDump && res.Final != nil {
		fmt.Fprint(out, res.Final.ASCII(64))
	}
	if *tracePath != "" && res.Trace != nil && cfg.MPIRanks > 1 {
		// Multi-rank traces are merged at the master and saved here.
		if err := res.Trace.Save(*tracePath); err != nil {
			return err
		}
	}
	return nil
}

// parseMPIRun extracts -np N from the --mpirun option string.
func parseMPIRun(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	fields := strings.Fields(s)
	for i, f := range fields {
		if f == "-np" || f == "-n" {
			if i+1 >= len(fields) {
				return 0, fmt.Errorf("--mpirun: %s needs a value", f)
			}
			np, err := strconv.Atoi(fields[i+1])
			if err != nil || np <= 0 {
				return 0, fmt.Errorf("--mpirun: invalid process count %q", fields[i+1])
			}
			return np, nil
		}
	}
	return 0, fmt.Errorf("--mpirun: no -np option in %q", s)
}
