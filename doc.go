// Package easypap is a from-scratch Go reproduction of "EASYPAP: a
// Framework for Learning Parallel Programming" (Lasserre, Namyst,
// Wacrenier; University of Bordeaux, 2020, HAL hal-02469919).
//
// The framework lives under internal/: the core runtime (internal/core),
// the OpenMP-like scheduling pool (internal/sched), the task-dependency
// engine (internal/taskdep), the message-passing runtime (internal/mpi),
// the monitoring and tracing toolchain (internal/monitor, internal/trace,
// internal/ezview), the experiment/plot pipeline (internal/expt,
// internal/plot) and the predefined kernels (internal/kernels).
//
// Executables live under cmd/ (easypap, easyview, easyplot, easybench) and
// runnable examples under examples/. The benchmarks in bench_test.go
// regenerate every figure of the paper's evaluation; see DESIGN.md and
// EXPERIMENTS.md.
package easypap
