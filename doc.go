// Package easypap is a from-scratch Go reproduction of "EASYPAP: a
// Framework for Learning Parallel Programming" (Lasserre, Namyst,
// Wacrenier; University of Bordeaux, 2020, HAL hal-02469919).
//
// The framework lives under internal/: the core runtime (internal/core),
// the OpenMP-like scheduling pool (internal/sched), the task-dependency
// engine (internal/taskdep), the message-passing runtime (internal/mpi),
// the monitoring and tracing toolchain (internal/monitor, internal/trace,
// internal/ezview), the experiment/plot pipeline (internal/expt,
// internal/plot) and the predefined kernels (internal/kernels).
//
// Executables live under cmd/ (easypap, easypapd, easyview, easyplot,
// easybench) and runnable examples under examples/. The benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation; see
// DESIGN.md and EXPERIMENTS.md.
//
// # The compute daemon
//
// easypapd (cmd/easypapd, backed by internal/serve) serves kernel runs
// over HTTP with job queueing and admission control, warm worker-pool
// reuse across jobs, a result cache keyed by canonical config hash, live
// frame streaming and mid-run cancellation (DESIGN.md §6):
//
//	easypapd -addr :8080 -queue 64 -workers 2 -cache 128
//
//	# submit (429 when the queue is full)
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"config":{"kernel":"mandel","dim":512,"iterations":10}}'
//	# poll status + result
//	curl -s localhost:8080/v1/jobs/j-000001
//	# cancel mid-run
//	curl -s -X DELETE localhost:8080/v1/jobs/j-000001
//	# queue depth, cache hit/miss, per-kernel throughput
//	curl -s localhost:8080/v1/stats
//
// Jobs submitted with "frames": true stream their per-iteration images
// (DESIGN.md §13): a bounded broadcast hub (ring of records + periodic
// keyframes) fans one encoded stream out to any number of viewers, a
// slow viewer skips ahead to the newest keyframe instead of stalling
// the run, and lazy kernels can ship dirty-tile deltas (~5x smaller at
// steady state) instead of full PNGs:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"config":{"kernel":"life",
//	     "variant":"lazy","dim":256,"iterations":100,"arg":"diag"},
//	     "frames":true}'
//	curl -s localhost:8080/v1/jobs/j-000002/frames > full.ezframe
//	curl -s 'localhost:8080/v1/jobs/j-000002/frames?format=delta' > d.ezframe
//
// Both streams decode with gfx.ReadRecord + gfx.Reassembler to
// identical pixels; the default stream stays plain EZFRAME+PNG for
// existing readers.
//
// Parameter sweeps fan out to a daemon by setting expt.Sweep.Remote to a
// serve/client.Client, picking up the daemon's result cache for repeated
// combinations.
//
// # Cluster mode
//
// With -self and -peers, daemons form a ring (internal/serve/cluster,
// DESIGN.md §8): submissions are routed by consistent hash of their
// canonical config to the node whose result cache owns them, any node
// answers for any job id (the "nXXXXXXXX.j-000017" prefix names the
// owner), and a dead peer's arc fails over to the next replica:
//
//	easypapd -addr :8080 -self http://hostA:8080 \
//	         -peers http://hostB:8080,http://hostC:8080
//
//	curl -s hostA:8080/v1/cluster          # membership + health
//	curl -s hostA:8080/v1/cluster/stats    # aggregated cluster counters
//
// serve/client.NewMulti takes every endpoint, learns the ring, and
// submits each config straight to its owner; as an expt.Runner it fans
// a sweep across the whole cluster and survives nodes dying mid-sweep.
// Any node also serves frames for any job: a non-owner proxies ONE
// upstream stream per (job, format) and fans it out to all of its local
// viewers (easypapd_edge_upstream_streams_total counts the dials).
//
// # Distributed single-job execution
//
// A single submission can also be split ACROSS the cluster (DESIGN.md
// §12): adding "shards": N to the submit body makes the owning node the
// coordinator of a row-band decomposition — the grid is cut into N
// horizontal bands (one ghost row each side), one band per healthy
// peer, each running the kernel's mpi_omp variant locally while
// per-iteration halo steps POST boundary rows to band neighbours over
// persistent HTTP connections (EZMSG1 frames, CRC-32C). The exchange is
// frontier-aware — a shard whose boundary tiles are inactive skips the
// round trip entirely, and life ships bit-packed rows (~8x smaller) —
// and the result is byte-identical to the unsharded run, cached under
// the same canonical config hash:
//
//	curl -s -X POST hostA:8080/v1/jobs -d '{"config":{"kernel":"life",
//	     "variant":"mpi_omp","dim":512,"tile_h":8,"iterations":100,
//	     "arg":"random"},"shards":3}'
//	curl -s hostA:8080/metrics | grep -e halos_sent -e halos_skipped
//
// The shard count is advisory (clamped to healthy peers and band rows;
// never part of the cache key). If a shard node dies mid-job the
// coordinator fails the job within the halo timeout with
// error_kind="shard_failed"; client.RunConfigSharded resubmits such
// failures unsharded automatically.
//
// # Durability
//
// With -data-dir, a daemon survives its own death (internal/serve/store,
// DESIGN.md §9). Completed results spill asynchronously to a
// disk-backed, content-addressed cache (CRC'd entry files + append-only
// index) layered under the in-memory LRU, and a write-ahead journal
// records every admitted job, so a restart re-enqueues the jobs that
// were queued or running — under their original ids — and serves every
// previously computed config from disk instead of recomputing it:
//
//	easypapd -addr :8080 -data-dir /var/lib/easypapd \
//	         -cache-max-bytes 268435456 -recover requeue
//
//	# after a crash + restart: same config, no recompute
//	curl -s localhost:8080/v1/stats | jq '{disk_hits, disk_entries, recovered_jobs}'
//
// -recover interrupt marks journaled in-flight jobs with the terminal
// "interrupted" status instead of re-running them; serve/client's
// RunConfig (and therefore expt sweeps) resubmits interrupted jobs
// automatically, so a parameter study rides through a rolling deploy.
//
// # Observability
//
// Every daemon is self-describing (internal/metrics, internal/trace,
// DESIGN.md §11). GET /metrics serves Prometheus text exposition from a
// zero-dependency registry — per-stage latency histograms
// (easypapd_stage_ns{stage=admit|queue|compute|proxy|...}) plus queue,
// ring, membership, disk and replication gauges — at ~13 ns per
// observation, so it is always on (-metrics=false turns the endpoint
// off). Each submission carries a trace id across proxy hops and
// replica fetches via the X-Easypap-Trace header; GET /v1/trace/{job}
// merges every node's spans into one connected tree, and
// ezview.ServiceGanttSVG or client.FormatTrace render it:
//
//	curl -s localhost:8080/metrics | grep 'stage="compute"'
//	curl -s localhost:8080/v1/trace/$JOB | jq '{nodes, spans: (.spans | length)}'
//
//	# live profiling on a side listener, never on the service port
//	easypapd -addr :8080 -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// # The lazy tile-activity engine
//
// internal/tilegrid is the shared frontier behind every lazy kernel
// variant (DESIGN.md §7): workers mark changed tiles' neighbourhoods
// with lock-free bitset ORs, and sched.Pool.ParallelForActive dispatches
// the compacted active list — per-iteration cost proportional to active
// tiles, not grid size. life ("lazy", "mpi_omp"), sandpile and asandpile
// ("lazy_omp") and the frontier-native fire kernel ride it; lazy jobs
// report their frontier through Result.Activity, the "frontier" monitor
// window, and the daemon's live status JSON:
//
//	easypap --kernel fire --variant lazy --size 512 --iterations 200 \
//	        --no-display
//	easypap --list-json   # machine-readable kernels, same shape as /v1/kernels
package easypap
